//! A fully parametrised gamma-type NHPP model.

use crate::error::ModelError;
use crate::spec::ModelSpec;
use nhpp_dist::{Continuous, Gamma};

/// A gamma-type NHPP software reliability model with concrete parameter
/// values: expected total faults `ω` and failure-law rate `β` (shape `α₀`
/// fixed by the [`ModelSpec`]).
///
/// # Example
///
/// ```
/// use nhpp_models::{GammaNhpp, ModelSpec};
///
/// # fn main() -> Result<(), nhpp_models::ModelError> {
/// let model = GammaNhpp::new(ModelSpec::goel_okumoto(), 40.0, 1e-5)?;
/// // Mean value function approaches ω as t → ∞.
/// assert!(model.mean_value(1e7) > 39.0);
/// // Software reliability over (t, t+u] is a probability.
/// let r = model.reliability(1e5, 1e4);
/// assert!((0.0..=1.0).contains(&r));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaNhpp {
    spec: ModelSpec,
    omega: f64,
    beta: f64,
    law: Gamma,
}

impl GammaNhpp {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameter`] unless `ω` and `β` are positive
    /// and finite.
    pub fn new(spec: ModelSpec, omega: f64, beta: f64) -> Result<Self, ModelError> {
        if !(omega > 0.0 && omega.is_finite()) {
            return Err(ModelError::InvalidParameter {
                name: "omega",
                value: omega,
                constraint: "must be positive and finite",
            });
        }
        let law = spec.failure_law(beta)?;
        Ok(GammaNhpp {
            spec,
            omega,
            beta,
            law,
        })
    }

    /// Model specification (the fixed `α₀`).
    pub fn spec(&self) -> ModelSpec {
        self.spec
    }

    /// Expected total number of faults `ω`.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Failure-law rate `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The failure-time law `Gamma(α₀, β)`.
    pub fn failure_law(&self) -> &Gamma {
        &self.law
    }

    /// Mean value function `Λ(t) = ω·G(t; α₀, β)`.
    pub fn mean_value(&self, t: f64) -> f64 {
        self.omega * self.law.cdf(t)
    }

    /// Failure intensity `λ(t) = ω·g(t; α₀, β)`.
    pub fn intensity(&self, t: f64) -> f64 {
        self.omega * self.law.pdf(t)
    }

    /// Expected number of faults remaining undetected at time `t`:
    /// `ω·(1 − G(t))`.
    pub fn expected_residual_faults(&self, t: f64) -> f64 {
        self.omega * self.law.sf(t)
    }

    /// Software reliability `R(t+u | t) = exp(−ω[G(t+u) − G(t)])`
    /// (Eq. (3) of the paper): the probability of zero failures in
    /// `(t, t+u]`.
    pub fn reliability(&self, t: f64, u: f64) -> f64 {
        (-self.reliability_exponent(t, u)).exp()
    }

    /// The exponent `ω[G(t+u) − G(t)]` of the reliability function — the
    /// expected number of failures in `(t, t+u]`.
    pub fn reliability_exponent(&self, t: f64, u: f64) -> f64 {
        self.omega * (self.law.ln_interval_mass(t, t + u)).exp()
    }

    /// Testing time after which the expected residual fault count drops
    /// to `target`: solves `ω·(1 − G(t)) = target`.
    ///
    /// Returns `0` if the target is already met at `t = 0` (i.e.
    /// `target >= ω`) and [`ModelError::InvalidParameter`] for a
    /// non-positive target (the expected residual never reaches zero in
    /// finite time).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameter`] unless `0 < target`.
    pub fn time_to_residual_target(&self, target: f64) -> Result<f64, ModelError> {
        if !(target > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "target",
                value: target,
                constraint: "must be positive (the residual only reaches 0 asymptotically)",
            });
        }
        if target >= self.omega {
            return Ok(0.0);
        }
        // ω·S(t) = target  ⇔  S(t) = target/ω  ⇔  t = S⁻¹(target/ω).
        Ok(self.law.quantile_upper(target / self.omega))
    }

    /// Testing time after which the reliability over a mission of length
    /// `u` first reaches `target`: solves `R(t+u | t) = target` for `t`.
    ///
    /// `R(t+u | t)` is increasing in `t` (debugging only removes faults),
    /// so the root is unique; it is found by bracket expansion plus
    /// bisection. Returns `0` when the target is already met at release
    /// time zero.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameter`] unless `target ∈ (0, 1)` and
    /// `u > 0`; [`ModelError::NoConvergence`] if no finite horizon
    /// reaches the target (cannot happen for a finite-failures model
    /// with `target < 1`).
    pub fn time_to_reliability(&self, target: f64, u: f64) -> Result<f64, ModelError> {
        if !(target > 0.0 && target < 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "target",
                value: target,
                constraint: "must lie strictly inside (0, 1)",
            });
        }
        if !(u > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "u",
                value: u,
                constraint: "must be positive",
            });
        }
        if self.reliability(0.0, u) >= target {
            return Ok(0.0);
        }
        // Expand the horizon until the target is met, then bisect.
        let mut hi = u;
        for _ in 0..200 {
            if self.reliability(hi, u) >= target {
                let mut lo = 0.0f64;
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if self.reliability(mid, u) >= target {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                    if hi - lo <= 1e-10 * hi.max(1.0) {
                        break;
                    }
                }
                return Ok(hi);
            }
            hi *= 2.0;
            if !hi.is_finite() {
                break;
            }
        }
        Err(ModelError::NoConvergence {
            context: "time_to_reliability expansion",
            iterations: 200,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn go() -> GammaNhpp {
        GammaNhpp::new(ModelSpec::goel_okumoto(), 50.0, 0.1).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(GammaNhpp::new(ModelSpec::goel_okumoto(), 0.0, 0.1).is_err());
        assert!(GammaNhpp::new(ModelSpec::goel_okumoto(), 10.0, 0.0).is_err());
        assert!(GammaNhpp::new(ModelSpec::goel_okumoto(), f64::NAN, 0.1).is_err());
    }

    #[test]
    fn mean_value_goel_okumoto_closed_form() {
        let m = go();
        for &t in &[0.5, 5.0, 20.0] {
            let expected = 50.0 * (1.0 - (-0.1f64 * t).exp());
            assert!((m.mean_value(t) - expected).abs() < 1e-10, "t={t}");
        }
        assert_eq!(m.mean_value(0.0), 0.0);
    }

    #[test]
    fn intensity_is_derivative_of_mean_value() {
        let m = go();
        let t = 7.0;
        let h = 1e-6;
        let fd = (m.mean_value(t + h) - m.mean_value(t - h)) / (2.0 * h);
        assert!((m.intensity(t) - fd).abs() < 1e-6);
    }

    #[test]
    fn reliability_closed_form_and_monotonicity() {
        let m = go();
        let (t, u): (f64, f64) = (10.0, 5.0);
        let expected = (-50.0 * ((-(0.1 * t)).exp() - (-(0.1 * (t + u))).exp())).exp();
        assert!((m.reliability(t, u) - expected).abs() < 1e-10);
        // Longer mission ⇒ lower reliability.
        assert!(m.reliability(t, 10.0) < m.reliability(t, 5.0));
        // Later start (more debugging) ⇒ higher reliability.
        assert!(m.reliability(20.0, 5.0) > m.reliability(10.0, 5.0));
    }

    #[test]
    fn residual_faults_decrease() {
        let m = go();
        assert!((m.expected_residual_faults(0.0) - 50.0).abs() < 1e-10);
        assert!(m.expected_residual_faults(10.0) > m.expected_residual_faults(30.0));
    }

    #[test]
    fn time_to_residual_target_inverts_residual() {
        let m = go();
        let t = m.time_to_residual_target(5.0).unwrap();
        assert!((m.expected_residual_faults(t) - 5.0).abs() < 1e-8);
        // Already satisfied.
        assert_eq!(m.time_to_residual_target(100.0).unwrap(), 0.0);
        // Invalid target.
        assert!(m.time_to_residual_target(0.0).is_err());
    }

    #[test]
    fn time_to_reliability_reaches_the_target() {
        let m = go();
        let (target, u) = (0.95, 2.0);
        let t = m.time_to_reliability(target, u).unwrap();
        assert!(t > 0.0);
        assert!((m.reliability(t, u) - target).abs() < 1e-6);
        // Slightly earlier the target is not yet met.
        assert!(m.reliability(t * 0.9, u) < target);
        // Trivially met for tiny missions at high starting reliability.
        assert_eq!(m.time_to_reliability(1e-6, 1e-9).unwrap(), 0.0);
        // Domain checks.
        assert!(m.time_to_reliability(1.0, 1.0).is_err());
        assert!(m.time_to_reliability(0.9, 0.0).is_err());
    }

    #[test]
    fn delayed_s_shaped_mean_value() {
        let m = GammaNhpp::new(ModelSpec::delayed_s_shaped(), 30.0, 0.5).unwrap();
        // 2-stage Erlang CDF: 1 − (1 + βt)e^{−βt}.
        let t = 4.0;
        let bt: f64 = 0.5 * t;
        let expected = 30.0 * (1.0 - (1.0 + bt) * (-bt).exp());
        assert!((m.mean_value(t) - expected).abs() < 1e-9);
    }
}
