//! Goodness-of-fit testing for fitted NHPP models.
//!
//! Interval estimates are only as honest as the model behind them, so a
//! fit should be validated before its posteriors are trusted. Two
//! classical checks are provided:
//!
//! * **Kolmogorov–Smirnov on the time-rescaled process** (failure-time
//!   data): under the fitted model, conditionally on the observed count
//!   `m`, the rescaled values `Λ(tᵢ)/Λ(t_e)` are the order statistics of
//!   `m` i.i.d. `U(0, 1)` draws; a KS test against uniformity therefore
//!   tests the whole mean-value-function shape.
//! * **χ² on grouped counts**: compare observed per-interval counts with
//!   the fitted expectations `ω·ΔG`, pooling intervals until each
//!   expected count reaches a minimum, with two degrees of freedom
//!   charged for the fitted `(ω, β)`.

use crate::error::ModelError;
use crate::model::GammaNhpp;
use nhpp_data::{FailureTimeData, GroupedData};
use nhpp_special::gamma_q;

/// Result of a goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GofResult {
    /// The test statistic (KS distance or χ² value).
    pub statistic: f64,
    /// Approximate p-value (asymptotic distribution).
    pub p_value: f64,
    /// Degrees of freedom (χ²) or sample size (KS).
    pub dof: usize,
}

/// Asymptotic Kolmogorov p-value
/// `Q_KS(λ) = 2·Σ_{j>=1} (−1)^{j−1} e^{−2 j² λ²}` with the
/// small-sample correction `λ = (√m + 0.12 + 0.11/√m)·D`.
fn ks_p_value(d: f64, m: usize) -> f64 {
    if m == 0 {
        return f64::NAN;
    }
    let sqrt_m = (m as f64).sqrt();
    let lambda = (sqrt_m + 0.12 + 0.11 / sqrt_m) * d;
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Kolmogorov–Smirnov test of a fitted model against failure-time data
/// via the time-rescaling theorem.
///
/// Small p-values reject the model; the test conditions on the observed
/// count, so it probes the *shape* of `Λ(t)`, not its level.
///
/// # Errors
///
/// [`ModelError::DegenerateData`] for an empty dataset.
///
/// # Example
///
/// ```
/// use nhpp_models::gof::ks_test;
/// use nhpp_models::{fit_mle, FitOptions, ModelSpec};
/// use nhpp_data::sys17;
///
/// # fn main() -> Result<(), nhpp_models::ModelError> {
/// let data = sys17::failure_times();
/// let fit = fit_mle(ModelSpec::goel_okumoto(), &data.clone().into(), FitOptions::default())?;
/// let gof = ks_test(&fit.model, &data)?;
/// assert!(gof.p_value > 0.05); // the GO model fits its own surrogate
/// # Ok(())
/// # }
/// ```
pub fn ks_test(model: &GammaNhpp, data: &FailureTimeData) -> Result<GofResult, ModelError> {
    let m = data.len();
    if m == 0 {
        return Err(ModelError::DegenerateData {
            message: "KS test needs at least one failure",
        });
    }
    let total = model.mean_value(data.observation_end());
    let mut d = 0.0f64;
    for (i, &t) in data.times().iter().enumerate() {
        let u = model.mean_value(t) / total;
        let below = i as f64 / m as f64;
        let above = (i as f64 + 1.0) / m as f64;
        d = d.max((u - below).abs()).max((above - u).abs());
    }
    Ok(GofResult {
        statistic: d,
        p_value: ks_p_value(d, m),
        dof: m,
    })
}

/// Minimum pooled expected count per χ² cell.
const MIN_EXPECTED: f64 = 5.0;

/// χ² goodness-of-fit test of a fitted model against grouped counts.
///
/// Adjacent intervals are pooled until every cell's expected count
/// reaches 5; degrees of freedom are `cells − 1 − 2` (two fitted
/// parameters).
///
/// # Errors
///
/// [`ModelError::DegenerateData`] if fewer than four pooled cells remain
/// (no degrees of freedom to test with).
pub fn chi_square_test(model: &GammaNhpp, data: &GroupedData) -> Result<GofResult, ModelError> {
    // Pool adjacent intervals.
    let mut cells: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let (mut obs_acc, mut exp_acc) = (0.0, 0.0);
    for (lo, hi, count) in data.intervals() {
        obs_acc += count as f64;
        exp_acc += model.omega() * model.failure_law().ln_interval_mass(lo, hi).exp();
        if exp_acc >= MIN_EXPECTED {
            cells.push((obs_acc, exp_acc));
            obs_acc = 0.0;
            exp_acc = 0.0;
        }
    }
    // Merge any remainder into the last cell.
    if exp_acc > 0.0 || obs_acc > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += obs_acc;
            last.1 += exp_acc;
        } else {
            cells.push((obs_acc, exp_acc));
        }
    }
    if cells.len() < 4 {
        return Err(ModelError::DegenerateData {
            message: "too few pooled cells for a chi-square test",
        });
    }
    let statistic: f64 = cells.iter().map(|&(o, e)| (o - e) * (o - e) / e).sum();
    let dof = cells.len() - 3;
    // p = Q(dof/2, x/2), the upper regularised incomplete gamma.
    let p_value = gamma_q(dof as f64 / 2.0, statistic / 2.0);
    Ok(GofResult {
        statistic,
        p_value,
        dof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{fit_mle, FitOptions};
    use crate::spec::ModelSpec;
    use nhpp_data::{datasets, sys17};

    fn fitted(spec: ModelSpec, data: &nhpp_data::ObservedData) -> GammaNhpp {
        fit_mle(spec, data, FitOptions::default()).unwrap().model
    }

    #[test]
    fn ks_accepts_the_generating_model() {
        let data = sys17::failure_times();
        let model = fitted(ModelSpec::goel_okumoto(), &data.clone().into());
        let gof = ks_test(&model, &data).unwrap();
        assert!(gof.p_value > 0.05, "p = {}", gof.p_value);
        assert!(gof.statistic < 0.2);
        assert_eq!(gof.dof, 38);
    }

    #[test]
    fn ks_rejects_a_badly_wrong_model() {
        // A model with a wildly wrong rate concentrates Λ(tᵢ)/Λ(t_e)
        // near 1 and fails the uniformity test.
        let data = sys17::failure_times();
        let model = GammaNhpp::new(ModelSpec::goel_okumoto(), 40.0, 1e-3).unwrap();
        let gof = ks_test(&model, &data).unwrap();
        assert!(gof.p_value < 0.01, "p = {}", gof.p_value);
    }

    #[test]
    fn ks_distinguishes_families_on_sshaped_data() {
        // The S-shaped trace strains the GO fit more than the DSS fit.
        let data = datasets::sshaped_times();
        let observed: nhpp_data::ObservedData = data.clone().into();
        let go = ks_test(&fitted(ModelSpec::goel_okumoto(), &observed), &data).unwrap();
        let dss = ks_test(&fitted(ModelSpec::delayed_s_shaped(), &observed), &data).unwrap();
        assert!(
            dss.statistic <= go.statistic * 1.2,
            "{} vs {}",
            dss.statistic,
            go.statistic
        );
    }

    #[test]
    fn chi_square_accepts_the_generating_model() {
        let data = sys17::grouped();
        let model = fitted(ModelSpec::goel_okumoto(), &data.clone().into());
        let gof = chi_square_test(&model, &data).unwrap();
        assert!(
            gof.p_value > 0.05,
            "p = {}, stat = {}",
            gof.p_value,
            gof.statistic
        );
        assert!(gof.dof >= 1);
    }

    #[test]
    fn chi_square_rejects_a_badly_wrong_model() {
        let data = sys17::grouped();
        let model = GammaNhpp::new(ModelSpec::goel_okumoto(), 400.0, 0.2).unwrap();
        let gof = chi_square_test(&model, &data).unwrap();
        assert!(gof.p_value < 1e-6, "p = {}", gof.p_value);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let empty = FailureTimeData::new(vec![], 10.0).unwrap();
        let model = GammaNhpp::new(ModelSpec::goel_okumoto(), 10.0, 0.1).unwrap();
        assert!(ks_test(&model, &empty).is_err());
        // Tiny grouped dataset: everything pools into too few cells.
        let tiny = GroupedData::from_unit_intervals(vec![1, 0, 1]).unwrap();
        assert!(chi_square_test(&model, &tiny).is_err());
    }

    #[test]
    fn ks_p_value_tail_behaviour() {
        // Very small distances → p near 1; large → p near 0.
        assert!(ks_p_value(0.01, 100) > 0.99);
        assert!(ks_p_value(0.5, 100) < 1e-6);
    }
}
