//! Probability distributions for the `nhpp-vb` workspace.
//!
//! Provides the continuous and discrete distributions that NHPP-based
//! software reliability models are built from — Gamma (in the **shape–rate**
//! convention used throughout the workspace), Exponential, Erlang, Normal,
//! Poisson, truncated Gamma — together with exact samplers and the
//! [`GammaProductMixture`] type that represents the VB2 variational
//! posterior `Σ_N Pᵥ(N) · Gamma(ω|N) ⊗ Gamma(β|N)`.
//!
//! # Conventions
//!
//! * `Gamma(shape, rate)` has density `rate^shape x^{shape−1} e^{−rate·x} / Γ(shape)`
//!   and mean `shape/rate`. The DSN 2007 paper writes `Gamma(b, c)` with `c`
//!   an inverse scale; that is this crate's `rate`.
//! * Constructors validate their parameters and return
//!   [`DistError`] on violation instead of panicking.
//!
//! # Example
//!
//! ```
//! use nhpp_dist::{Continuous, Gamma};
//!
//! # fn main() -> Result<(), nhpp_dist::DistError> {
//! let g = Gamma::new(2.0, 4.0)?; // shape 2, rate 4 ⇒ mean 0.5
//! assert!((g.mean() - 0.5).abs() < 1e-15);
//! assert!((g.cdf(g.quantile(0.9)) - 0.9).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they also reject NaN, which is exactly the validation the
// numerical code needs.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
mod erlang;
mod error;
mod exponential;
mod gamma;
mod lognormal;
mod mixture;
mod normal;
mod poisson;
mod traits;
mod truncated;

pub use erlang::Erlang;
pub use error::DistError;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use mixture::{GammaMixture, GammaProductMixture, MixtureComponent};
pub use normal::Normal;
pub use poisson::Poisson;
pub use traits::{Continuous, Discrete, Sample};
pub use truncated::TruncatedGamma;
