//! Error type for distribution construction and evaluation.

use std::error::Error;
use std::fmt;

/// Errors arising when constructing or evaluating a distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A distribution parameter violated its constraint (e.g. a
    /// non-positive shape).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Constraint that was violated.
        constraint: &'static str,
    },
    /// A probability argument was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A truncation interval was empty or carried (numerically) zero mass.
    EmptyTruncation {
        /// Lower truncation bound.
        lo: f64,
        /// Upper truncation bound.
        hi: f64,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(
                    f,
                    "parameter {name}={value} violates constraint: {constraint}"
                )
            }
            DistError::InvalidProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            DistError::EmptyTruncation { lo, hi } => {
                write!(
                    f,
                    "truncation interval ({lo}, {hi}] is empty or has zero mass"
                )
            }
        }
    }
}

impl Error for DistError {}
