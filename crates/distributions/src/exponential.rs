//! Exponential distribution (the Goel–Okumoto failure-time law).

use crate::error::DistError;
use crate::traits::{Continuous, Sample};
use rand::Rng;

/// Exponential distribution with the given rate: `f(x) = rate·e^{−rate·x}`.
///
/// Equivalent to `Gamma(1, rate)` but with closed-form evaluation paths
/// and an inverse-CDF sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an `Exponential(rate)` distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be positive and finite",
            });
        }
        Ok(Exponential { rate })
    }

    /// Rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Continuous for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        -(-p).ln_1p() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

impl Sample<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF on (0, 1]; 1 − random() avoids ln(0).
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::Gamma;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(2.0).is_ok());
    }

    #[test]
    fn agrees_with_gamma_shape_one() {
        let e = Exponential::new(1.3).unwrap();
        let g = Gamma::new(1.0, 1.3).unwrap();
        for &x in &[0.0, 0.1, 1.0, 4.0] {
            assert!((e.cdf(x) - g.cdf(x)).abs() < 1e-14);
            assert!((e.pdf(x) - g.pdf(x)).abs() < 1e-14);
        }
        for &p in &[0.05, 0.5, 0.99] {
            assert!((e.quantile(p) - g.quantile(p)).abs() < 1e-10);
        }
    }

    #[test]
    fn quantile_round_trip_and_domain() {
        let e = Exponential::new(0.7).unwrap();
        for &p in &[0.001, 0.5, 0.999] {
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-12);
        }
        assert!(e.quantile(-0.1).is_nan());
        assert!(e.quantile(1.1).is_nan());
        assert_eq!(e.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn sampling_mean() {
        let mut rng = StdRng::seed_from_u64(99);
        let e = Exponential::new(4.0).unwrap();
        let n = 100_000;
        let mean = e.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01);
    }
}
