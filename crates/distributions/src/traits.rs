//! Distribution traits.

use rand::Rng;

/// A univariate continuous distribution.
///
/// Implementations return [`f64::NAN`] from evaluation methods when the
/// argument lies outside the support, mirroring the conventions of
/// `nhpp-special`.
pub trait Continuous {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Natural log of the density at `x` (`−∞` where the density is zero).
    fn ln_pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Survival function `P(X > x)`, computed without cancellation where
    /// possible.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile function: smallest `x` with `cdf(x) >= p`, for `p ∈ [0, 1]`.
    /// Returns NaN for `p` outside `[0, 1]`.
    fn quantile(&self, p: f64) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;
}

/// A univariate discrete distribution supported on the non-negative
/// integers.
pub trait Discrete {
    /// Probability mass at `k`.
    fn pmf(&self, k: u64) -> f64;

    /// Natural log of the mass at `k`.
    fn ln_pmf(&self, k: u64) -> f64;

    /// Cumulative distribution function `P(X <= k)`.
    fn cdf(&self, k: u64) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;
}

/// Ability to draw random samples of type `T`.
pub trait Sample<T> {
    /// Draws one sample using the supplied random number generator.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Draws `n` samples into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}
