//! Lognormal distribution — the marginal law of the log-space Laplace
//! ("LAPL-LOG") posterior approximation.

use crate::error::DistError;
use crate::normal::standard_normal;
use crate::traits::{Continuous, Sample};
use nhpp_special::{norm_cdf, norm_ppf, norm_sf};
use rand::Rng;

/// Lognormal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with the given log-space location and scale.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `mu` is finite and
    /// `sigma` is positive and finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "must be finite",
            });
        }
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be positive and finite",
            });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Log-space location `mu`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale `sigma`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Median `e^{mu}`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Mode `e^{mu − sigma²}`.
    pub fn mode(&self) -> f64 {
        (self.mu - self.sigma * self.sigma).exp()
    }

    /// Raw moment `E[X^r] = exp(r·mu + r²sigma²/2)` (any real order).
    pub fn raw_moment(&self, r: f64) -> f64 {
        (r * self.mu + 0.5 * r * r * self.sigma * self.sigma).exp()
    }

    /// Skewness `(e^{σ²} + 2)·√(e^{σ²} − 1)` — always positive.
    pub fn skewness(&self) -> f64 {
        let e = (self.sigma * self.sigma).exp();
        (e + 2.0) * (e - 1.0).sqrt()
    }
}

impl Continuous for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        norm_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        norm_sf((x.ln() - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * norm_ppf(p)).exp()
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn variance(&self) -> f64 {
        // Var = (e^{σ²} − 1)·e^{2μ + σ²} = (e^{σ²} − 1)·E[X]².
        (self.sigma * self.sigma).exp_m1() * self.raw_moment(1.0).powi(2)
    }
}

impl Sample<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(1.0, 0.5).is_ok());
    }

    #[test]
    fn moment_formulas() {
        let ln = LogNormal::new(1.0, 0.5).unwrap();
        // E[X] = exp(mu + sigma²/2).
        assert!((ln.mean() - (1.0f64 + 0.125).exp()).abs() < 1e-12);
        // Var = (e^{σ²} − 1)e^{2mu+σ²}.
        let expected_var = ((0.25f64).exp() - 1.0) * (2.0 + 0.25f64).exp();
        assert!((ln.variance() - expected_var).abs() < 1e-10);
        assert!((ln.median() - 1.0f64.exp()).abs() < 1e-12);
        assert!(ln.mode() < ln.median() && ln.median() < ln.mean());
        assert!(ln.skewness() > 0.0);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let ln = LogNormal::new(-2.0, 1.3).unwrap();
        for &p in &[0.005, 0.1, 0.5, 0.9, 0.995] {
            let x = ln.quantile(p);
            assert!(x > 0.0);
            assert!((ln.cdf(x) - p).abs() < 1e-11, "p={p}");
        }
        assert_eq!(ln.cdf(0.0), 0.0);
        assert_eq!(ln.sf(-1.0), 1.0);
        assert!((ln.quantile(0.5) - ln.median()).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let ln = LogNormal::new(0.5, 0.4).unwrap();
        let n = 40_000;
        let hi = 6.0;
        let h = hi / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x0 = i as f64 * h + 1e-12;
            acc += 0.5 * (ln.pdf(x0) + ln.pdf(x0 + h)) * h;
        }
        assert!((acc - ln.cdf(hi)).abs() < 1e-5);
    }

    #[test]
    fn sampling_moments() {
        let ln = LogNormal::new(0.2, 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 300_000;
        let s = ln.sample_n(&mut rng, n);
        let mean = s.iter().sum::<f64>() / n as f64;
        assert!((mean - ln.mean()).abs() < 0.01 * ln.mean());
        assert!(s.iter().all(|&x| x > 0.0));
    }
}
