//! Finite Gamma mixtures.
//!
//! The VB2 variational posterior of the DSN 2007 paper is exactly a finite
//! mixture `Σ_N Pᵥ(N) · Gamma(ω | A_N, r_ω) ⊗ Gamma(β | B_N, r_{β,N})`:
//! per component the two coordinates are independent, but the mixture
//! couples them and produces the ω–β correlation that the fully factorised
//! VB1 posterior cannot represent. [`GammaProductMixture`] implements that
//! object; [`GammaMixture`] is its one-dimensional marginal.

use crate::error::DistError;
use crate::gamma::Gamma;
use crate::traits::{Continuous, Sample};
use nhpp_numeric::roots::brent;
use nhpp_special::log_sum_exp;
use rand::Rng;

/// One component of a [`GammaProductMixture`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureComponent {
    /// Mixture weight (non-negative; normalised on construction).
    pub weight: f64,
    /// Gamma distribution of the first coordinate (ω).
    pub omega: Gamma,
    /// Gamma distribution of the second coordinate (β).
    pub beta: Gamma,
}

/// A weighted mixture of univariate Gamma distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaMixture {
    weights: Vec<f64>,
    components: Vec<Gamma>,
}

impl GammaMixture {
    /// Builds a mixture from `(weight, component)` pairs. Weights must be
    /// non-negative with a positive sum; they are normalised internally.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] on an empty list, negative weight
    /// or zero total weight.
    pub fn new(parts: Vec<(f64, Gamma)>) -> Result<Self, DistError> {
        if parts.is_empty() {
            return Err(DistError::InvalidParameter {
                name: "components",
                value: 0.0,
                constraint: "mixture needs at least one component",
            });
        }
        let total: f64 = parts.iter().map(|(w, _)| *w).sum();
        if parts.iter().any(|(w, _)| !(*w >= 0.0)) || !(total > 0.0) || !total.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "weights",
                value: total,
                constraint: "must be non-negative with a positive finite sum",
            });
        }
        let (weights, components) = parts.into_iter().map(|(w, g)| (w / total, g)).unzip();
        Ok(GammaMixture {
            weights,
            components,
        })
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if the mixture has no components (cannot occur for values
    /// built through [`GammaMixture::new`]).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Normalised weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component distributions.
    pub fn components(&self) -> &[Gamma] {
        &self.components
    }

    /// Raw moment `E[X^k]` for small integer `k` (closed form per
    /// component: `E[X^k] = ∏_{i<k}(shape + i) / rate^k`).
    pub fn raw_moment(&self, k: u32) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, g)| {
                let mut m = 1.0;
                for i in 0..k {
                    m *= (g.shape() + i as f64) / g.rate();
                }
                w * m
            })
            .sum()
    }

    /// Central moment `E[(X − E[X])^k]` for `k <= 4`.
    ///
    /// # Panics
    ///
    /// Panics if `k > 4` (higher orders are not implemented).
    pub fn central_moment(&self, k: u32) -> f64 {
        assert!(k <= 4, "central moments implemented up to order 4");
        let m1 = self.raw_moment(1);
        match k {
            0 => 1.0,
            1 => 0.0,
            2 => self.raw_moment(2) - m1 * m1,
            3 => self.raw_moment(3) - 3.0 * m1 * self.raw_moment(2) + 2.0 * m1.powi(3),
            _ => {
                self.raw_moment(4) - 4.0 * m1 * self.raw_moment(3)
                    + 6.0 * m1 * m1 * self.raw_moment(2)
                    - 3.0 * m1.powi(4)
            }
        }
    }
}

impl Continuous for GammaMixture {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let terms: Vec<f64> = self
            .weights
            .iter()
            .zip(&self.components)
            .map(|(w, g)| w.ln() + g.ln_pdf(x))
            .collect();
        log_sum_exp(&terms)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, g)| w * g.cdf(x))
            .sum()
    }

    fn sf(&self, x: f64) -> f64 {
        self.weights
            .iter()
            .zip(&self.components)
            .map(|(w, g)| w * g.sf(x))
            .sum()
    }

    /// Quantile by Brent's method on the mixture CDF, bracketed by the
    /// extreme component quantiles.
    fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for g in &self.components {
            let q = g.quantile(p);
            lo = lo.min(q);
            hi = hi.max(q);
        }
        if (hi - lo).abs() <= 1e-14 * hi.abs() {
            return hi;
        }
        brent(|x| self.cdf(x) - p, lo, hi, 1e-12 * hi.max(1.0), 200).unwrap_or(0.5 * (lo + hi))
    }

    fn mean(&self) -> f64 {
        self.raw_moment(1)
    }

    fn variance(&self) -> f64 {
        self.central_moment(2)
    }
}

impl Sample<f64> for GammaMixture {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (w, g) in self.weights.iter().zip(&self.components) {
            acc += w;
            if u <= acc {
                return g.sample(rng);
            }
        }
        self.components[self.components.len() - 1].sample(rng)
    }
}

/// A mixture of *products* of two independent Gamma distributions — the
/// exact form of the VB2 variational posterior over `(ω, β)`.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaProductMixture {
    components: Vec<MixtureComponent>,
}

impl GammaProductMixture {
    /// Builds the mixture; weights are normalised.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] on an empty component list,
    /// negative weight or zero total weight.
    pub fn new(mut components: Vec<MixtureComponent>) -> Result<Self, DistError> {
        if components.is_empty() {
            return Err(DistError::InvalidParameter {
                name: "components",
                value: 0.0,
                constraint: "mixture needs at least one component",
            });
        }
        let total: f64 = components.iter().map(|c| c.weight).sum();
        if components.iter().any(|c| !(c.weight >= 0.0)) || !(total > 0.0) || !total.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "weights",
                value: total,
                constraint: "must be non-negative with a positive finite sum",
            });
        }
        for c in &mut components {
            c.weight /= total;
        }
        Ok(GammaProductMixture { components })
    }

    /// Component list (weights normalised).
    pub fn components(&self) -> &[MixtureComponent] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if there are no components (cannot occur after `new`).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Marginal distribution of the first coordinate (ω).
    pub fn marginal_omega(&self) -> GammaMixture {
        GammaMixture::new(
            self.components
                .iter()
                .map(|c| (c.weight, c.omega))
                .collect(),
        )
        .expect("weights already validated")
    }

    /// Marginal distribution of the second coordinate (β).
    pub fn marginal_beta(&self) -> GammaMixture {
        GammaMixture::new(self.components.iter().map(|c| (c.weight, c.beta)).collect())
            .expect("weights already validated")
    }

    /// `E[ω]`.
    pub fn mean_omega(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * c.omega.mean())
            .sum()
    }

    /// `E[β]`.
    pub fn mean_beta(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * c.beta.mean())
            .sum()
    }

    /// `Var(ω)` (law of total variance across components).
    pub fn var_omega(&self) -> f64 {
        let m = self.mean_omega();
        self.components
            .iter()
            .map(|c| c.weight * (c.omega.variance() + c.omega.mean().powi(2)))
            .sum::<f64>()
            - m * m
    }

    /// `Var(β)`.
    pub fn var_beta(&self) -> f64 {
        let m = self.mean_beta();
        self.components
            .iter()
            .map(|c| c.weight * (c.beta.variance() + c.beta.mean().powi(2)))
            .sum::<f64>()
            - m * m
    }

    /// `Cov(ω, β)`. Within each component the coordinates are independent,
    /// so the covariance is carried entirely by the mixing distribution:
    /// `Σ w_N E[ω|N]E[β|N] − E[ω]E[β]`.
    pub fn covariance(&self) -> f64 {
        let cross: f64 = self
            .components
            .iter()
            .map(|c| c.weight * c.omega.mean() * c.beta.mean())
            .sum();
        cross - self.mean_omega() * self.mean_beta()
    }

    /// Joint log-density `ln p(ω, β)`.
    pub fn ln_pdf(&self, omega: f64, beta: f64) -> f64 {
        let terms: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.ln() + c.omega.ln_pdf(omega) + c.beta.ln_pdf(beta))
            .collect();
        log_sum_exp(&terms)
    }
}

impl Sample<(f64, f64)> for GammaProductMixture {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for c in &self.components {
            acc += c.weight;
            if u <= acc {
                return (c.omega.sample(rng), c.beta.sample(rng));
            }
        }
        let c = &self.components[self.components.len() - 1];
        (c.omega.sample(rng), c.beta.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_component() -> GammaMixture {
        GammaMixture::new(vec![
            (0.3, Gamma::new(2.0, 1.0).unwrap()),
            (0.7, Gamma::new(10.0, 2.0).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(GammaMixture::new(vec![]).is_err());
        assert!(GammaMixture::new(vec![(-1.0, Gamma::new(1.0, 1.0).unwrap())]).is_err());
        assert!(GammaMixture::new(vec![(0.0, Gamma::new(1.0, 1.0).unwrap())]).is_err());
        assert!(GammaProductMixture::new(vec![]).is_err());
    }

    #[test]
    fn weights_are_normalised() {
        let m = GammaMixture::new(vec![
            (2.0, Gamma::new(1.0, 1.0).unwrap()),
            (6.0, Gamma::new(2.0, 1.0).unwrap()),
        ])
        .unwrap();
        assert!((m.weights()[0] - 0.25).abs() < 1e-14);
        assert!((m.weights()[1] - 0.75).abs() < 1e-14);
    }

    #[test]
    fn single_component_degenerates_to_gamma() {
        let g = Gamma::new(3.0, 0.5).unwrap();
        let m = GammaMixture::new(vec![(1.0, g)]).unwrap();
        assert!((m.mean() - g.mean()).abs() < 1e-12);
        assert!((m.variance() - g.variance()).abs() < 1e-10);
        for &p in &[0.01, 0.5, 0.99] {
            assert!((m.quantile(p) - g.quantile(p)).abs() < 1e-7 * g.quantile(p));
        }
    }

    #[test]
    fn mixture_mean_is_weighted_mean() {
        let m = two_component();
        let expected = 0.3 * 2.0 + 0.7 * 5.0;
        assert!((m.mean() - expected).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_quantile_round_trip() {
        let m = two_component();
        for &p in &[0.005, 0.1, 0.5, 0.9, 0.995] {
            let x = m.quantile(p);
            assert!((m.cdf(x) - p).abs() < 1e-9, "p={p}, x={x}");
        }
        assert_eq!(m.quantile(0.0), 0.0);
        assert_eq!(m.quantile(1.0), f64::INFINITY);
        assert!(m.quantile(-0.1).is_nan());
    }

    #[test]
    fn central_moments_match_monte_carlo() {
        let m = two_component();
        let mut rng = StdRng::seed_from_u64(8);
        let n = 400_000;
        let s = m.sample_n(&mut rng, n);
        let mean = s.iter().sum::<f64>() / n as f64;
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let m3 = s.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
        assert!((mean - m.mean()).abs() < 0.02);
        assert!((var - m.variance()).abs() < 0.05);
        assert!(
            (m3 - m.central_moment(3)).abs() < 0.3,
            "mc={m3}, exact={}",
            m.central_moment(3)
        );
    }

    #[test]
    fn product_mixture_covariance_from_mixing() {
        // Two components whose ω and β means move together ⇒ positive cov.
        let m = GammaProductMixture::new(vec![
            MixtureComponent {
                weight: 0.5,
                omega: Gamma::new(10.0, 1.0).unwrap(),
                beta: Gamma::new(10.0, 10.0).unwrap(),
            },
            MixtureComponent {
                weight: 0.5,
                omega: Gamma::new(20.0, 1.0).unwrap(),
                beta: Gamma::new(20.0, 10.0).unwrap(),
            },
        ])
        .unwrap();
        // Cov = E[mω·mβ] − E[mω]E[mβ] = (10·1 + 20·2)/2 − 15·1.5 = 25 − 22.5.
        assert!((m.covariance() - 2.5).abs() < 1e-10);
        assert!((m.mean_omega() - 15.0).abs() < 1e-12);
        assert!((m.mean_beta() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn product_mixture_single_component_has_zero_covariance() {
        let m = GammaProductMixture::new(vec![MixtureComponent {
            weight: 1.0,
            omega: Gamma::new(5.0, 1.0).unwrap(),
            beta: Gamma::new(2.0, 3.0).unwrap(),
        }])
        .unwrap();
        assert_eq!(m.covariance(), 0.0);
    }

    #[test]
    fn product_marginals_are_consistent() {
        let m = GammaProductMixture::new(vec![
            MixtureComponent {
                weight: 1.0,
                omega: Gamma::new(4.0, 2.0).unwrap(),
                beta: Gamma::new(3.0, 5.0).unwrap(),
            },
            MixtureComponent {
                weight: 3.0,
                omega: Gamma::new(8.0, 2.0).unwrap(),
                beta: Gamma::new(6.0, 5.0).unwrap(),
            },
        ])
        .unwrap();
        assert!((m.marginal_omega().mean() - m.mean_omega()).abs() < 1e-12);
        assert!((m.marginal_beta().variance() - m.var_beta()).abs() < 1e-12);
    }

    #[test]
    fn product_sampling_matches_moments() {
        let m = GammaProductMixture::new(vec![
            MixtureComponent {
                weight: 0.4,
                omega: Gamma::new(10.0, 1.0).unwrap(),
                beta: Gamma::new(5.0, 50.0).unwrap(),
            },
            MixtureComponent {
                weight: 0.6,
                omega: Gamma::new(30.0, 1.0).unwrap(),
                beta: Gamma::new(15.0, 50.0).unwrap(),
            },
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let n = 300_000;
        let samples: Vec<(f64, f64)> = (0..n).map(|_| m.sample(&mut rng)).collect();
        let mw = samples.iter().map(|s| s.0).sum::<f64>() / n as f64;
        let mb = samples.iter().map(|s| s.1).sum::<f64>() / n as f64;
        let cov = samples.iter().map(|s| (s.0 - mw) * (s.1 - mb)).sum::<f64>() / n as f64;
        assert!((mw - m.mean_omega()).abs() < 0.1);
        assert!((mb - m.mean_beta()).abs() < 0.01);
        assert!(
            (cov - m.covariance()).abs() < 0.05,
            "mc={cov}, exact={}",
            m.covariance()
        );
    }

    #[test]
    fn ln_pdf_is_log_of_weighted_density() {
        let g1 = Gamma::new(2.0, 1.0).unwrap();
        let g2 = Gamma::new(5.0, 1.0).unwrap();
        let m = GammaMixture::new(vec![(0.5, g1), (0.5, g2)]).unwrap();
        let x = 2.3;
        let expected = (0.5 * g1.pdf(x) + 0.5 * g2.pdf(x)).ln();
        assert!((m.ln_pdf(x) - expected).abs() < 1e-12);
    }
}
