//! Poisson distribution with an exact sampler valid for all means.

use crate::error::DistError;
use crate::traits::{Discrete, Sample};
use nhpp_special::{gamma_q, ln_factorial};
use rand::Rng;

/// Poisson distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a `Poisson(mean)` distribution. A mean of zero is allowed
    /// (the point mass at zero), matching its use as the residual-fault
    /// distribution when the model is exhausted.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `mean >= 0` and finite.
    pub fn new(mean: f64) -> Result<Self, DistError> {
        if !(mean >= 0.0 && mean.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be non-negative and finite",
            });
        }
        Ok(Poisson { mean })
    }
}

impl Discrete for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        if self.mean == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        k as f64 * self.mean.ln() - self.mean - ln_factorial(k)
    }

    fn cdf(&self, k: u64) -> f64 {
        if self.mean == 0.0 {
            return 1.0;
        }
        // P(X <= k) = Q(k + 1, λ).
        gamma_q(k as f64 + 1.0, self.mean)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.mean
    }
}

impl Sample<u64> for Poisson {
    /// Knuth multiplication for small means, Atkinson's logistic rejection
    /// (algorithm "PA") for large ones — exact for every mean.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lambda = self.mean;
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^{−λ}.
            let limit = (-lambda).exp();
            let mut product: f64 = rng.random();
            let mut count = 0u64;
            while product > limit {
                product *= rng.random::<f64>();
                count += 1;
            }
            count
        } else {
            // Atkinson (1979), rejection from a logistic envelope.
            let beta = std::f64::consts::PI / (3.0 * lambda).sqrt();
            let alpha = beta * lambda;
            let k = (0.767 - 3.36 / lambda).ln() - lambda - beta.ln();
            loop {
                let u: f64 = rng.random();
                if u <= 0.0 || u >= 1.0 {
                    continue;
                }
                let x = (alpha - ((1.0 - u) / u).ln()) / beta;
                let n = (x + 0.5).floor();
                if n < 0.0 {
                    continue;
                }
                let v: f64 = rng.random();
                let y = alpha - beta * x;
                let t = 1.0 + y.exp();
                let lhs = y + (v / (t * t)).ln();
                let rhs = k + n * lambda.ln() - ln_factorial(n as u64);
                if lhs <= rhs {
                    return n as u64;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(Poisson::new(0.0).is_ok());
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(4.5).unwrap();
        let total: f64 = (0..60).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let p = Poisson::new(7.2).unwrap();
        let mut acc = 0.0;
        for k in 0..25u64 {
            acc += p.pmf(k);
            assert!((p.cdf(k) - acc).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn zero_mean_is_point_mass() {
        let p = Poisson::new(0.0).unwrap();
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(3), 0.0);
        assert_eq!(p.cdf(0), 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.sample(&mut rng), 0);
    }

    #[test]
    fn sampler_moments_small_and_large_mean() {
        let mut rng = StdRng::seed_from_u64(12345);
        for &lambda in &[0.3f64, 3.0, 29.0, 40.0, 400.0, 12_000.0] {
            let p = Poisson::new(lambda).unwrap();
            let n = 60_000;
            let samples = p.sample_n(&mut rng, n);
            let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
            let var = samples
                .iter()
                .map(|&x| (x as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64;
            let se = (lambda / n as f64).sqrt();
            assert!(
                (mean - lambda).abs() < 6.0 * se.max(1e-3),
                "λ={lambda}, mean={mean}"
            );
            assert!(
                (var - lambda).abs() < 0.1 * lambda.max(1.0),
                "λ={lambda}, var={var}"
            );
        }
    }

    #[test]
    fn sampler_distribution_chi_square_small_mean() {
        // Coarse χ² goodness-of-fit on λ = 2.
        let mut rng = StdRng::seed_from_u64(777);
        let p = Poisson::new(2.0).unwrap();
        let n = 100_000usize;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            let s = p.sample(&mut rng) as usize;
            counts[s.min(7)] += 1;
        }
        let mut chi2 = 0.0;
        for (k, &count) in counts.iter().enumerate() {
            let expected = if k < 7 {
                p.pmf(k as u64) * n as f64
            } else {
                (1.0 - p.cdf(6)) * n as f64
            };
            chi2 += (count as f64 - expected).powi(2) / expected;
        }
        // 7 degrees of freedom; 99.9% critical value ≈ 24.3.
        assert!(chi2 < 24.3, "chi2={chi2}, counts={counts:?}");
    }
}
