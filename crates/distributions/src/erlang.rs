//! Erlang distribution (integer-shape Gamma); the 2-stage Erlang is the
//! failure-time law of the delayed S-shaped model.

use crate::error::DistError;
use crate::gamma::Gamma;
use crate::traits::{Continuous, Sample};
use rand::Rng;

/// Erlang distribution: `Gamma(k, rate)` with integer stage count `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    stages: u32,
    inner: Gamma,
}

impl Erlang {
    /// Creates an `Erlang(stages, rate)` distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] for `stages == 0` or an invalid rate.
    pub fn new(stages: u32, rate: f64) -> Result<Self, DistError> {
        if stages == 0 {
            return Err(DistError::InvalidParameter {
                name: "stages",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Ok(Erlang {
            stages,
            inner: Gamma::new(stages as f64, rate)?,
        })
    }

    /// Number of exponential stages.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Rate of each stage.
    pub fn rate(&self) -> f64 {
        self.inner.rate()
    }

    /// View as the equivalent [`Gamma`] distribution.
    pub fn as_gamma(&self) -> &Gamma {
        &self.inner
    }
}

impl Continuous for Erlang {
    fn pdf(&self, x: f64) -> f64 {
        self.inner.pdf(x)
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        self.inner.ln_pdf(x)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x)
    }

    fn sf(&self, x: f64) -> f64 {
        self.inner.sf(x)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.inner.quantile(p)
    }

    fn mean(&self) -> f64 {
        self.inner.mean()
    }

    fn variance(&self) -> f64 {
        self.inner.variance()
    }
}

impl Sample<f64> for Erlang {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Erlang::new(0, 1.0).is_err());
        assert!(Erlang::new(2, 0.0).is_err());
        assert!(Erlang::new(2, 1.0).is_ok());
    }

    #[test]
    fn delayed_s_shaped_cdf_closed_form() {
        // 2-stage Erlang CDF: 1 − (1 + βt)e^{−βt}.
        let e = Erlang::new(2, 0.5).unwrap();
        for &t in &[0.1, 1.0, 3.0, 10.0] {
            let bt: f64 = 0.5 * t;
            let expected = 1.0 - (1.0 + bt) * (-bt).exp();
            assert!((e.cdf(t) - expected).abs() < 1e-13, "t={t}");
        }
    }

    #[test]
    fn matches_gamma_view() {
        let e = Erlang::new(3, 2.0).unwrap();
        assert_eq!(e.mean(), 1.5);
        assert_eq!(e.as_gamma().shape(), 3.0);
        assert!((e.quantile(0.4) - e.as_gamma().quantile(0.4)).abs() < 1e-14);
    }
}
