//! The Gamma distribution in shape–rate form, with the interval-mass and
//! interval-mean helpers that drive the VB fixed-point equations.

use crate::error::DistError;
use crate::normal::standard_normal;
use crate::traits::{Continuous, Sample};
use nhpp_special::{
    gamma_p, gamma_p_inv, gamma_q, gamma_q_inv, ln_gamma, ln_gamma_p, ln_gamma_q, log_diff_exp,
};
use rand::Rng;

/// Gamma distribution with density
/// `f(x) = rate^shape · x^{shape−1} · e^{−rate·x} / Γ(shape)` on `x > 0`.
///
/// Mean `shape/rate`, variance `shape/rate²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a `Gamma(shape, rate)` distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless both parameters are positive
    /// and finite.
    pub fn new(shape: f64, rate: f64) -> Result<Self, DistError> {
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "must be positive and finite",
            });
        }
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be positive and finite",
            });
        }
        Ok(Gamma { shape, rate })
    }

    /// Creates the Gamma distribution with the given mean and standard
    /// deviation (`shape = (mean/sd)²`, `rate = mean/sd²`) — the form in
    /// which the paper specifies its informative priors.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless both are positive and finite.
    ///
    /// # Example
    ///
    /// ```
    /// use nhpp_dist::Gamma;
    /// # fn main() -> Result<(), nhpp_dist::DistError> {
    /// // The paper's Info prior on ω: mean 50, sd 15.8 ⇒ Gamma(10, 0.2).
    /// let prior = Gamma::from_mean_sd(50.0, 50.0 / 10f64.sqrt())?;
    /// assert!((prior.shape() - 10.0).abs() < 1e-12);
    /// assert!((prior.rate() - 0.2).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_mean_sd(mean: f64, sd: f64) -> Result<Self, DistError> {
        if !(mean > 0.0 && mean.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be positive and finite",
            });
        }
        if !(sd > 0.0 && sd.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "sd",
                value: sd,
                constraint: "must be positive and finite",
            });
        }
        let shape = (mean / sd).powi(2);
        let rate = mean / (sd * sd);
        Gamma::new(shape, rate)
    }

    /// Shape parameter.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate (inverse scale) parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mode of the density: `(shape − 1)/rate` for `shape >= 1`, else `0`.
    pub fn mode(&self) -> f64 {
        if self.shape >= 1.0 {
            (self.shape - 1.0) / self.rate
        } else {
            0.0
        }
    }

    /// `E[ln X] = ψ(shape) − ln rate`, needed by variational updates.
    pub fn mean_ln(&self) -> f64 {
        nhpp_special::digamma(self.shape) - self.rate.ln()
    }

    /// Differential entropy of the distribution.
    pub fn entropy(&self) -> f64 {
        let a = self.shape;
        a - self.rate.ln() + ln_gamma(a) + (1.0 - a) * nhpp_special::digamma(a)
    }

    /// `ln P(lo < X <= hi)` computed without cancellation, choosing
    /// between CDF differences and survival differences depending on where
    /// the interval lies. `hi` may be `+∞`; `lo` may be `0`.
    ///
    /// Returns `−∞` for an interval of zero mass and NaN if `hi < lo` or
    /// either bound is negative.
    pub fn ln_interval_mass(&self, lo: f64, hi: f64) -> f64 {
        ln_interval_mass_std(self.shape, self.rate * lo, self.rate * hi)
    }

    /// Conditional mean `E[X | lo < X <= hi]`.
    ///
    /// Uses the identity `∫ x f(x; a, r) dx = (a/r) ∫ f(x; a+1, r) dx`, so
    /// the result is `(shape/rate) · mass_{a+1}(lo, hi) / mass_a(lo, hi)`,
    /// with both masses evaluated in log space. This is exactly the ratio
    /// appearing in Eqs. (24) and (26) of the DSN 2007 paper (with the
    /// survival-function reading for censored tails).
    ///
    /// Returns NaN when the interval carries zero mass.
    ///
    /// # Example
    ///
    /// ```
    /// use nhpp_dist::Gamma;
    /// # fn main() -> Result<(), nhpp_dist::DistError> {
    /// // Exponential memorylessness: E[X | X > t] = t + 1/rate.
    /// let g = Gamma::new(1.0, 2.0)?;
    /// let m = g.interval_mean(3.0, f64::INFINITY);
    /// assert!((m - 3.5).abs() < 1e-10);
    /// # Ok(())
    /// # }
    /// ```
    pub fn interval_mean(&self, lo: f64, hi: f64) -> f64 {
        let ln_mass_a = self.ln_interval_mass(lo, hi);
        if ln_mass_a == f64::NEG_INFINITY || ln_mass_a.is_nan() {
            return f64::NAN;
        }
        let ln_mass_a1 = ln_interval_mass_std(self.shape + 1.0, self.rate * lo, self.rate * hi);
        (self.shape / self.rate) * (ln_mass_a1 - ln_mass_a).exp()
    }
}

/// `ln P(xlo < Y <= xhi)` for `Y ~ Gamma(shape, 1)` in standardised
/// coordinates.
fn ln_interval_mass_std(shape: f64, xlo: f64, xhi: f64) -> f64 {
    if !(xlo >= 0.0) || !(xhi >= 0.0) || xhi < xlo {
        return f64::NAN;
    }
    if xhi == xlo {
        return f64::NEG_INFINITY;
    }
    if xlo == 0.0 {
        return ln_gamma_p(shape, xhi);
    }
    if xhi == f64::INFINITY {
        return ln_gamma_q(shape, xlo);
    }
    // Pick the representation with the least cancellation: if the interval
    // sits in the lower half of the distribution use P-differences, else
    // Q-differences.
    if gamma_p(shape, xlo) + gamma_p(shape, xhi) < 1.0 {
        log_diff_exp(ln_gamma_p(shape, xhi), ln_gamma_p(shape, xlo))
    } else {
        log_diff_exp(ln_gamma_q(shape, xlo), ln_gamma_q(shape, xhi))
    }
}

impl Continuous for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x < 0.0 {
            return f64::NEG_INFINITY;
        }
        if x == 0.0 {
            // Density limit at zero: 0 for shape > 1, rate for shape = 1, ∞ below.
            return match self.shape.partial_cmp(&1.0) {
                Some(std::cmp::Ordering::Greater) => f64::NEG_INFINITY,
                Some(std::cmp::Ordering::Equal) => self.rate.ln(),
                _ => f64::INFINITY,
            };
        }
        self.shape * self.rate.ln() + (self.shape - 1.0) * x.ln()
            - self.rate * x
            - ln_gamma(self.shape)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.shape, self.rate * x)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        gamma_q(self.shape, self.rate * x)
    }

    fn quantile(&self, p: f64) -> f64 {
        gamma_p_inv(self.shape, p) / self.rate
    }

    fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }
}

impl Gamma {
    /// Upper-tail quantile: `x` with `P(X > x) = q`, stable for tiny `q`.
    pub fn quantile_upper(&self, q: f64) -> f64 {
        gamma_q_inv(self.shape, q) / self.rate
    }
}

impl Sample<f64> for Gamma {
    /// Marsaglia–Tsang squeeze method; shapes below one use the boost
    /// `X_a = X_{a+1} · U^{1/a}`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let a = self.shape;
        if a < 1.0 {
            let boost: f64 = rng.random::<f64>().powf(1.0 / a);
            let inner = Gamma {
                shape: a + 1.0,
                rate: self.rate,
            };
            return inner.sample(rng) * boost;
        }
        let d = a - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u: f64 = rng.random();
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v / self.rate;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v / self.rate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(2.0, f64::INFINITY).is_err());
        assert!(Gamma::new(2.0, 3.0).is_ok());
    }

    #[test]
    fn from_mean_sd_round_trip() {
        let g = Gamma::from_mean_sd(1e-5, 3.2e-6).unwrap();
        assert!((g.mean() - 1e-5).abs() < 1e-18);
        assert!((g.variance().sqrt() - 3.2e-6).abs() < 1e-18);
    }

    #[test]
    fn moments_and_mode() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        assert_eq!(g.mean(), 1.5);
        assert_eq!(g.variance(), 0.75);
        assert_eq!(g.mode(), 1.0);
        assert_eq!(Gamma::new(0.5, 1.0).unwrap().mode(), 0.0);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Numerically integrate the pdf and compare with the cdf.
        let g = Gamma::new(2.5, 1.3).unwrap();
        let n = 20_000;
        let hi = 4.0;
        let h = hi / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x0 = i as f64 * h;
            acc += 0.5 * (g.pdf(x0) + g.pdf(x0 + h)) * h;
        }
        assert!((acc - g.cdf(hi)).abs() < 1e-6);
    }

    #[test]
    fn exponential_special_case() {
        let g = Gamma::new(1.0, 0.5).unwrap();
        for &x in &[0.1, 1.0, 5.0] {
            assert!((g.cdf(x) - (1.0 - (-0.5 * x).exp())).abs() < 1e-14);
            assert!((g.pdf(x) - 0.5 * (-0.5 * x).exp()).abs() < 1e-14);
        }
    }

    #[test]
    fn quantile_round_trip() {
        let g = Gamma::new(7.3, 0.01).unwrap();
        for &p in &[0.005, 0.025, 0.5, 0.975, 0.995] {
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-10);
        }
        let xu = g.quantile_upper(1e-8);
        assert!((g.sf(xu) - 1e-8).abs() < 1e-11);
    }

    #[test]
    fn ln_pdf_edge_at_zero() {
        assert_eq!(Gamma::new(2.0, 1.0).unwrap().ln_pdf(0.0), f64::NEG_INFINITY);
        assert_eq!(Gamma::new(1.0, 3.0).unwrap().ln_pdf(0.0), 3.0f64.ln());
        assert_eq!(Gamma::new(0.5, 1.0).unwrap().ln_pdf(0.0), f64::INFINITY);
        assert_eq!(
            Gamma::new(2.0, 1.0).unwrap().ln_pdf(-1.0),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn interval_mass_matches_cdf_difference() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        let (lo, hi) = (0.4, 1.7);
        let expected = (g.cdf(hi) - g.cdf(lo)).ln();
        assert!((g.ln_interval_mass(lo, hi) - expected).abs() < 1e-10);
        // Full line.
        assert!((g.ln_interval_mass(0.0, f64::INFINITY)).abs() < 1e-12);
        // Degenerate.
        assert_eq!(g.ln_interval_mass(1.0, 1.0), f64::NEG_INFINITY);
        assert!(g.ln_interval_mass(2.0, 1.0).is_nan());
    }

    #[test]
    fn interval_mass_deep_tail() {
        // P(X > 500) for Gamma(1,1) = e^{-500}; ln mass must stay finite.
        let g = Gamma::new(1.0, 1.0).unwrap();
        assert!((g.ln_interval_mass(500.0, f64::INFINITY) + 500.0).abs() < 1e-9);
        // Tail slice [500, 501]: ln(e^{-500} − e^{-501}).
        let expected = -500.0 + (1.0 - (-1.0f64).exp()).ln();
        assert!((g.ln_interval_mass(500.0, 501.0) - expected).abs() < 1e-9);
    }

    #[test]
    fn interval_mean_memoryless_exponential() {
        let g = Gamma::new(1.0, 2.0).unwrap();
        let m = g.interval_mean(3.0, f64::INFINITY);
        assert!((m - (3.0 + 0.5)).abs() < 1e-10);
    }

    #[test]
    fn interval_mean_whole_line_is_mean() {
        let g = Gamma::new(4.2, 0.7).unwrap();
        assert!((g.interval_mean(0.0, f64::INFINITY) - g.mean()).abs() < 1e-10);
    }

    #[test]
    fn interval_mean_bounded_by_interval() {
        let g = Gamma::new(2.0, 1.0).unwrap();
        let (lo, hi) = (1.0, 2.5);
        let m = g.interval_mean(lo, hi);
        assert!(m > lo && m < hi, "m={m}");
        // Against direct numerical integration.
        let n = 40_000;
        let h = (hi - lo) / n as f64;
        let (mut num, mut den) = (0.0, 0.0);
        for i in 0..n {
            let x = lo + (i as f64 + 0.5) * h;
            let f = g.pdf(x);
            num += x * f * h;
            den += f * h;
        }
        assert!((m - num / den).abs() < 1e-6, "m={m}, quad={}", num / den);
    }

    #[test]
    fn interval_mean_zero_mass_is_nan() {
        let g = Gamma::new(2.0, 1.0).unwrap();
        assert!(g.interval_mean(5.0, 5.0).is_nan());
    }

    #[test]
    fn sampling_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(shape, rate) in &[(0.5f64, 1.0f64), (1.0, 2.0), (4.0, 0.5), (30.0, 3.0)] {
            let g = Gamma::new(shape, rate).unwrap();
            let n = 200_000;
            let samples = g.sample_n(&mut rng, n);
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let se_mean = (g.variance() / n as f64).sqrt();
            assert!(
                (mean - g.mean()).abs() < 6.0 * se_mean,
                "shape={shape}, rate={rate}, mean={mean}, expected={}",
                g.mean()
            );
            assert!((var - g.variance()).abs() < 0.05 * g.variance());
            assert!(samples.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn mean_ln_matches_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gamma::new(3.5, 2.0).unwrap();
        let n = 200_000;
        let mc: f64 = g.sample_n(&mut rng, n).iter().map(|x| x.ln()).sum::<f64>() / n as f64;
        assert!((g.mean_ln() - mc).abs() < 5e-3);
    }

    #[test]
    fn entropy_matches_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = Gamma::new(2.0, 1.5).unwrap();
        let n = 200_000;
        let mc: f64 = -g
            .sample_n(&mut rng, n)
            .iter()
            .map(|&x| g.ln_pdf(x))
            .sum::<f64>()
            / n as f64;
        assert!((g.entropy() - mc).abs() < 5e-3);
    }
}
