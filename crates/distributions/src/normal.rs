//! Normal distribution and the standard-normal sampler used by the other
//! samplers in this crate.

use crate::error::DistError;
use crate::traits::{Continuous, Sample};
use nhpp_special::{norm_cdf, norm_ln_pdf, norm_ppf, norm_sf};
use rand::Rng;

/// Draws a standard normal variate by the Marsaglia polar method.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = 2.0 * rng.random::<f64>() - 1.0;
        let v: f64 = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a `Normal(mean, sd)` distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `sd > 0` and both arguments
    /// are finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self, DistError> {
        if !mean.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite",
            });
        }
        if !(sd > 0.0 && sd.is_finite()) {
            return Err(DistError::InvalidParameter {
                name: "sd",
                value: sd,
                constraint: "must be positive and finite",
            });
        }
        Ok(Normal { mean, sd })
    }

    /// Standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// Standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Continuous for Normal {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        norm_ln_pdf((x - self.mean) / self.sd) - self.sd.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        norm_cdf((x - self.mean) / self.sd)
    }

    fn sf(&self, x: f64) -> f64 {
        norm_sf((x - self.mean) / self.sd)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * norm_ppf(p)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.sd * self.sd
    }
}

impl Sample<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * standard_normal(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(3.0, 2.0).is_ok());
    }

    #[test]
    fn standard_matches_special_functions() {
        let n = Normal::standard();
        assert!((n.cdf(1.96) - 0.975_002_104_851_780_2).abs() < 1e-12);
        assert!((n.quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-12);
        assert_eq!(n.mean(), 0.0);
        assert_eq!(n.variance(), 1.0);
    }

    #[test]
    fn location_scale() {
        let n = Normal::new(10.0, 2.0).unwrap();
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-14);
        assert!((n.quantile(0.5) - 10.0).abs() < 1e-12);
        assert!((n.sf(14.0) - norm_sf(2.0)).abs() < 1e-14);
    }

    #[test]
    fn sampling_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = Normal::new(-2.0, 3.0).unwrap();
        let k = 200_000;
        let s = n.sample_n(&mut rng, k);
        let mean = s.iter().sum::<f64>() / k as f64;
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((mean + 2.0).abs() < 0.05);
        assert!((var - 9.0).abs() < 0.2);
    }
}
