//! Gamma distribution truncated to an interval — the latent failure-time
//! law inside observation windows and beyond the censoring point.

use crate::error::DistError;
use crate::gamma::Gamma;
use crate::traits::{Continuous, Sample};
use rand::Rng;

/// A [`Gamma`] distribution conditioned on the interval `(lo, hi]`
/// (`hi = ∞` allowed).
///
/// Used by the MCMC data-augmentation steps (sampling latent failure times
/// inside a grouped-data bin or beyond the end of testing) and to express
/// the conditional expectations `E[T | bin]`, `E[T | T > t_e]` appearing
/// in the VB2 fixed-point equations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedGamma {
    base: Gamma,
    lo: f64,
    hi: f64,
    /// Cached `ln P(lo < X <= hi)` under `base`.
    ln_mass: f64,
}

impl TruncatedGamma {
    /// Creates the truncation of `base` to `(lo, hi]`.
    ///
    /// # Errors
    ///
    /// * [`DistError::InvalidParameter`] if `lo < 0`, or `hi <= lo`.
    /// * [`DistError::EmptyTruncation`] if the interval carries zero
    ///   probability mass at `f64` resolution (deeper than roughly the
    ///   `e^{−700}` tail).
    pub fn new(base: Gamma, lo: f64, hi: f64) -> Result<Self, DistError> {
        if !(lo >= 0.0) {
            return Err(DistError::InvalidParameter {
                name: "lo",
                value: lo,
                constraint: "must be non-negative",
            });
        }
        if !(hi > lo) {
            return Err(DistError::InvalidParameter {
                name: "hi",
                value: hi,
                constraint: "must exceed lo",
            });
        }
        let ln_mass = base.ln_interval_mass(lo, hi);
        // Below e^{−700} the interval mass underflows f64 and the
        // inverse-CDF sampler would collapse; treat as empty.
        if !ln_mass.is_finite() || ln_mass < -700.0 {
            return Err(DistError::EmptyTruncation { lo, hi });
        }
        Ok(TruncatedGamma {
            base,
            lo,
            hi,
            ln_mass,
        })
    }

    /// The untruncated base distribution.
    pub fn base(&self) -> &Gamma {
        &self.base
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound (possibly `∞`).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `ln P(lo < X <= hi)` under the base distribution.
    pub fn ln_mass(&self) -> f64 {
        self.ln_mass
    }
}

impl Continuous for TruncatedGamma {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= self.lo || x > self.hi {
            return f64::NEG_INFINITY;
        }
        self.base.ln_pdf(x) - self.ln_mass
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        (self.base.ln_interval_mass(self.lo, x) - self.ln_mass).exp()
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 1.0;
        }
        if x >= self.hi {
            return 0.0;
        }
        (self.base.ln_interval_mass(x, self.hi) - self.ln_mass).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        // Invert in whichever of CDF/survival space conditions better.
        let plo = self.base.cdf(self.lo);
        if plo < 0.5 {
            let phi = self.base.cdf(self.hi);
            self.base.quantile(plo + p * (phi - plo))
        } else {
            let qlo = self.base.sf(self.lo);
            let qhi = self.base.sf(self.hi);
            self.base.quantile_upper(qlo + p * (qhi - qlo))
        }
    }

    fn mean(&self) -> f64 {
        self.base.interval_mean(self.lo, self.hi)
    }

    fn variance(&self) -> f64 {
        // E[X²] on the interval via the shape-raising identity applied twice:
        // ∫ x² f(x; a, r) dx = a(a+1)/r² ∫ f(x; a+2, r) dx.
        let a = self.base.shape();
        let r = self.base.rate();
        let raised = Gamma::new(a + 2.0, r).expect("parameters already validated");
        let ln_mass2 = raised.ln_interval_mass(self.lo, self.hi);
        let second = a * (a + 1.0) / (r * r) * (ln_mass2 - self.ln_mass).exp();
        let m = self.mean();
        (second - m * m).max(0.0)
    }
}

impl Sample<f64> for TruncatedGamma {
    /// Exact inverse-CDF sampling in the better-conditioned of CDF or
    /// survival space; valid as deep into the tail as `f64` can represent
    /// the interval mass (roughly `e^{−700}`).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let x = self.quantile(u);
        // Clamp defensively against round-off at the interval edges.
        x.clamp(self.lo.max(f64::MIN_POSITIVE), self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> Gamma {
        Gamma::new(2.0, 1.5).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(TruncatedGamma::new(base(), -1.0, 2.0).is_err());
        assert!(TruncatedGamma::new(base(), 2.0, 2.0).is_err());
        assert!(TruncatedGamma::new(base(), 3.0, 1.0).is_err());
        assert!(TruncatedGamma::new(base(), 0.0, f64::INFINITY).is_ok());
        // Way beyond representable tail mass.
        let far = TruncatedGamma::new(Gamma::new(1.0, 1.0).unwrap(), 1e10, f64::INFINITY);
        assert!(matches!(far, Err(DistError::EmptyTruncation { .. })));
    }

    #[test]
    fn untruncated_matches_base() {
        let t = TruncatedGamma::new(base(), 0.0, f64::INFINITY).unwrap();
        assert!((t.mean() - base().mean()).abs() < 1e-10);
        for &x in &[0.2, 1.0, 3.0] {
            assert!((t.cdf(x) - base().cdf(x)).abs() < 1e-12);
            assert!((t.pdf(x) - base().pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_endpoints() {
        let t = TruncatedGamma::new(base(), 0.5, 2.0).unwrap();
        assert_eq!(t.cdf(0.5), 0.0);
        assert_eq!(t.cdf(2.0), 1.0);
        assert_eq!(t.sf(0.4), 1.0);
        assert_eq!(t.sf(2.5), 0.0);
        assert!((t.cdf(1.0) + t.sf(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_round_trip_both_branches() {
        // Lower-tail interval (CDF branch) and upper-tail interval
        // (survival branch).
        for (lo, hi) in [(0.1, 1.0), (4.0, f64::INFINITY)] {
            let t = TruncatedGamma::new(base(), lo, hi).unwrap();
            for &p in &[0.01, 0.3, 0.5, 0.9, 0.99] {
                let x = t.quantile(p);
                assert!(x > lo && (hi.is_infinite() || x <= hi));
                assert!((t.cdf(x) - p).abs() < 1e-9, "lo={lo}, p={p}");
            }
        }
    }

    #[test]
    fn mean_and_variance_match_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(2024);
        let t = TruncatedGamma::new(base(), 0.8, 3.0).unwrap();
        let n = 200_000;
        let s = t.sample_n(&mut rng, n);
        assert!(s.iter().all(|&x| x > 0.8 && x <= 3.0));
        let mean = s.iter().sum::<f64>() / n as f64;
        let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(
            (mean - t.mean()).abs() < 5e-3,
            "mean={mean}, exact={}",
            t.mean()
        );
        assert!(
            (var - t.variance()).abs() < 5e-3,
            "var={var}, exact={}",
            t.variance()
        );
    }

    #[test]
    fn deep_tail_sampling_stays_in_support() {
        // Tail at survival mass ≈ e^{−30}.
        let g = Gamma::new(1.0, 1.0).unwrap();
        let t = TruncatedGamma::new(g, 30.0, f64::INFINITY).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = t.sample(&mut rng);
            assert!(x >= 30.0, "x={x}");
        }
        // Memorylessness: mean ≈ 31.
        assert!((t.mean() - 31.0).abs() < 1e-6);
    }

    #[test]
    fn ln_pdf_outside_support() {
        let t = TruncatedGamma::new(base(), 1.0, 2.0).unwrap();
        assert_eq!(t.ln_pdf(0.5), f64::NEG_INFINITY);
        assert_eq!(t.ln_pdf(2.5), f64::NEG_INFINITY);
        assert!(t.ln_pdf(1.5).is_finite());
    }
}
