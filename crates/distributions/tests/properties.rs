//! Property-based tests for the distribution layer.

use nhpp_dist::Discrete;
use nhpp_dist::{Continuous, Gamma, GammaMixture, Poisson, TruncatedGamma};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Gamma CDF/quantile round trip over a broad parameter box.
    #[test]
    fn gamma_quantile_roundtrip(shape in 0.1f64..500.0, rate in 1e-6f64..1e6, p in 1e-6f64..1.0f64) {
        prop_assume!(p < 1.0 - 1e-9);
        let g = Gamma::new(shape, rate).unwrap();
        let x = g.quantile(p);
        prop_assert!(x.is_finite() && x >= 0.0);
        prop_assert!((g.cdf(x) - p).abs() < 1e-8, "shape={shape}, rate={rate}, p={p}");
    }

    /// CDF + SF = 1 for the Gamma distribution.
    #[test]
    fn gamma_cdf_sf_complementary(shape in 0.1f64..200.0, rate in 1e-3f64..1e3, frac in 0.01f64..5.0) {
        let g = Gamma::new(shape, rate).unwrap();
        let x = g.mean() * frac;
        prop_assert!((g.cdf(x) + g.sf(x) - 1.0).abs() < 1e-11);
    }

    /// Interval mean always lies inside the interval.
    #[test]
    fn gamma_interval_mean_inside(shape in 0.2f64..50.0, rate in 0.01f64..100.0,
                                  lo_frac in 0.0f64..3.0, width in 0.01f64..5.0) {
        let g = Gamma::new(shape, rate).unwrap();
        let lo = g.mean() * lo_frac;
        let hi = lo + g.mean() * width;
        let m = g.interval_mean(lo, hi);
        if m.is_finite() {
            prop_assert!(m >= lo && m <= hi, "m={m}, lo={lo}, hi={hi}");
        }
    }

    /// Censored-tail mean exceeds the censoring point and the overall mean
    /// of the tail start (stochastic ordering).
    #[test]
    fn gamma_tail_mean_dominates(shape in 0.2f64..50.0, rate in 0.01f64..100.0, t_frac in 0.1f64..4.0) {
        let g = Gamma::new(shape, rate).unwrap();
        let t = g.mean() * t_frac;
        let m = g.interval_mean(t, f64::INFINITY);
        prop_assert!(m > t);
        prop_assert!(m >= g.mean() * 0.999 || t_frac < 1.0 || m > t);
    }

    /// Truncated gamma quantiles stay within the truncation interval.
    #[test]
    fn truncated_quantile_in_support(shape in 0.5f64..20.0, lo_frac in 0.0f64..2.0,
                                     width in 0.05f64..4.0, p in 0.001f64..0.999) {
        let g = Gamma::new(shape, 1.0).unwrap();
        let lo = g.mean() * lo_frac;
        let hi = lo + g.mean() * width;
        if let Ok(t) = TruncatedGamma::new(g, lo, hi) {
            let x = t.quantile(p);
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9, "x={x}, lo={lo}, hi={hi}");
            prop_assert!((t.cdf(x) - p).abs() < 1e-6);
        }
    }

    /// Poisson pmf is a valid probability over a generous support window.
    #[test]
    fn poisson_pmf_valid(mean in 0.0f64..200.0) {
        let p = Poisson::new(mean).unwrap();
        let hi = (mean + 12.0 * (mean + 1.0).sqrt()) as u64;
        let total: f64 = (0..=hi).map(|k| p.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "mean={mean}, total={total}");
    }

    /// Mixture mean equals the weighted component means; variance exceeds
    /// the weighted within-component variance (law of total variance).
    #[test]
    fn mixture_moment_identities(w1 in 0.05f64..1.0, w2 in 0.05f64..1.0,
                                 s1 in 0.5f64..30.0, s2 in 0.5f64..30.0,
                                 r in 0.01f64..10.0) {
        let g1 = Gamma::new(s1, r).unwrap();
        let g2 = Gamma::new(s2, r).unwrap();
        let m = GammaMixture::new(vec![(w1, g1), (w2, g2)]).unwrap();
        let wsum = w1 + w2;
        let expected_mean = (w1 * g1.mean() + w2 * g2.mean()) / wsum;
        prop_assert!((m.mean() - expected_mean).abs() < 1e-9 * expected_mean.max(1.0));
        let within = (w1 * g1.variance() + w2 * g2.variance()) / wsum;
        prop_assert!(m.variance() >= within - 1e-9 * within.max(1.0));
    }

    /// Mixture CDF is monotone and matches quantile inversion.
    #[test]
    fn mixture_quantile_roundtrip(s1 in 0.5f64..20.0, s2 in 0.5f64..20.0, p in 0.01f64..0.99) {
        let m = GammaMixture::new(vec![
            (0.5, Gamma::new(s1, 1.0).unwrap()),
            (0.5, Gamma::new(s2, 1.0).unwrap()),
        ]).unwrap();
        let x = m.quantile(p);
        prop_assert!((m.cdf(x) - p).abs() < 1e-7);
    }
}
