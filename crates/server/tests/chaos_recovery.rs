//! Crash-recovery chaos harness: kill the storage at *every* injected
//! fault point of a deterministic workload and assert that recovery
//! always yields a prefix-consistent registry.
//!
//! The property, for every crash point `k` and fault kind:
//!
//! 1. reopening the surviving bytes never fails and never surfaces a
//!    torn record;
//! 2. the recovered data version `v` equals the number of ingests that
//!    were acknowledged before the crash (acknowledged = durable), and
//!    the recovered state is exactly the first `v` batches;
//! 3. `fsck` on the recovered directory reports every project healthy;
//! 4. ingestion continues from `v` and a further reopen sees it.
//!
//! Overload admission control is exercised at the end of the file over
//! a real TCP server: a saturated work queue sheds with `503` +
//! `Retry-After` while the server stays live.

use nhpp_serve::registry::fsck;
use nhpp_serve::{
    client_request, client_request_full, DurabilityPolicy, FaultStorage, IoFaultKind, IoFaultPlan,
    MemStorage, ProjectConfig, Registry, Server, ServerConfig, Storage,
};
use std::sync::Arc;
use std::time::Duration;

/// Batches in the deterministic workload; batch `i` (0-based) carries
/// one failure time and advances the data version to `i + 1`.
const BATCHES: usize = 8;

fn batch_text(i: usize) -> String {
    let t_end = 10.0 * (i + 1) as f64;
    let time = 10.0 * i as f64 + 5.0;
    format!("# t_end={t_end}\n{time}\n")
}

fn config() -> ProjectConfig {
    ProjectConfig::from_labels("times", "go", "paper-info-times").expect("valid config")
}

/// Runs the workload until the storage dies (or to completion) and
/// returns how many ingests were acknowledged.
fn run_workload(storage: Arc<dyn Storage>, policy: DurabilityPolicy) -> usize {
    let Ok(registry) = Registry::open_with(storage, policy) else {
        return 0;
    };
    if registry.create("chaos", config()).is_err() {
        return 0;
    }
    let project = registry.get("chaos").expect("created above");
    let mut acknowledged = 0;
    for i in 0..BATCHES {
        match project.ingest(&batch_text(i)) {
            Ok(_) => acknowledged += 1,
            Err(_) => break,
        }
    }
    // Graceful-shutdown hook; on a dead storage this only bumps the
    // maintenance-failure counter.
    registry.snapshot_all();
    acknowledged
}

/// Asserts the recovered registry is exactly the first `v` batches,
/// then continues ingestion to completion and reopens once more.
fn assert_prefix_and_continue(storage: Arc<MemStorage>, acknowledged: usize, context: &str) {
    let registry = Registry::open_with(storage.clone(), DurabilityPolicy::default())
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    let Some(project) = registry.get("chaos") else {
        // The crash predates a durable project — only legal before the
        // first ingest was acknowledged.
        assert_eq!(acknowledged, 0, "{context}: durable ingests vanished");
        return;
    };
    let v = project.version();
    assert_eq!(
        v as usize, acknowledged,
        "{context}: recovered version {v} != acknowledged {acknowledged}"
    );
    let summary = project.summary();
    assert_eq!(summary.event_count, v, "{context}: event count");
    if v >= 1 {
        let t_end = 10.0 * v as f64;
        assert_eq!(
            summary.observation_end, t_end,
            "{context}: observation end"
        );
    }
    if v >= 2 {
        // The two newest failure times are exactly the tail of the
        // prefix — the state is the batches, not merely their count.
        let (t_prev, t_last) = project.newest_gap().expect("two events");
        assert_eq!(t_prev, 10.0 * (v - 1) as f64 - 5.0, "{context}: t_prev");
        assert_eq!(t_last, 10.0 * v as f64 - 5.0, "{context}: t_last");
    }

    // Recovery truncated any torn tail, so the directory is healthy.
    for entry in fsck(storage.as_ref()).expect("fsck scans") {
        assert!(
            entry.healthy(),
            "{context}: fsck unhealthy after recovery: {entry:?}"
        );
    }

    // The log keeps accepting batches exactly where the prefix ended.
    for i in v as usize..BATCHES {
        project
            .ingest(&batch_text(i))
            .unwrap_or_else(|e| panic!("{context}: continued ingest {i} failed: {e}"));
    }
    assert_eq!(project.version() as usize, BATCHES, "{context}: final version");

    // And the continuation itself is durable.
    let reopened = Registry::open_with(storage, DurabilityPolicy::default())
        .unwrap_or_else(|e| panic!("{context}: second reopen failed: {e}"));
    let project = reopened.get("chaos").expect("project survives");
    assert_eq!(project.version() as usize, BATCHES, "{context}: reopened");
    assert_eq!(project.summary().event_count as usize, BATCHES);
}

/// Counts the storage operations the clean workload performs under a
/// policy, to size the fault sweep.
fn count_ops(policy: DurabilityPolicy) -> u64 {
    let probe = Arc::new(FaultStorage::new(IoFaultPlan::at(
        u64::MAX,
        IoFaultKind::DiskFull,
    )));
    let acknowledged = run_workload(probe.clone(), policy);
    assert_eq!(acknowledged, BATCHES, "clean probe run must complete");
    assert!(!probe.crashed());
    probe.ops()
}

fn sweep(policy: DurabilityPolicy, policy_name: &str) {
    let total_ops = count_ops(policy);
    assert!(total_ops > 0, "workload must touch storage");
    let kinds = [
        IoFaultKind::TornWrite,
        IoFaultKind::DiskFull,
        IoFaultKind::RenameFail,
    ];
    for kind in kinds {
        for k in 0..total_ops {
            let mut plan = IoFaultPlan::at(k, kind);
            // Vary the torn-write cut so short and long partial frames
            // are both exercised.
            if kind == IoFaultKind::TornWrite {
                plan.cut_quarters = 1 + (k % 3) as u8;
            }
            let storage = Arc::new(FaultStorage::over(MemStorage::new(), plan));
            let acknowledged = run_workload(storage.clone(), policy);
            let context = format!("{policy_name}/{kind:?}@op{k}");
            assert_prefix_and_continue(Arc::new(storage.survivor()), acknowledged, &context);
        }
    }
}

#[test]
fn every_write_crash_point_recovers_a_consistent_prefix() {
    // Manual policy: the log alone carries the state.
    sweep(
        DurabilityPolicy {
            snapshot_every: 0,
            compact_at_bytes: 0,
        },
        "manual",
    );
}

#[test]
fn crash_points_under_aggressive_maintenance_recover_too() {
    // Snapshot every other batch and compact almost always: every
    // maintenance crash window (snapshot temp write, snapshot rename,
    // log rewrite) falls inside the sweep.
    sweep(
        DurabilityPolicy {
            snapshot_every: 2,
            compact_at_bytes: 1,
        },
        "aggressive",
    );
}

#[test]
fn short_reads_at_recovery_time_never_fabricate_state() {
    // Build a clean durable state first.
    let clean = Arc::new(MemStorage::new());
    let acknowledged = run_workload(
        clean.clone(),
        DurabilityPolicy {
            snapshot_every: 3,
            compact_at_bytes: 0,
        },
    );
    assert_eq!(acknowledged, BATCHES);
    let bytes = clean.dump();

    // Injecting a short read at every recovery-time operation either
    // fails the open outright or yields a consistent prefix — never a
    // registry claiming data the log does not hold.
    for k in 0..64 {
        let storage = Arc::new(FaultStorage::over(
            MemStorage::from_map(bytes.clone()),
            IoFaultPlan::at(k, IoFaultKind::ShortRead),
        ));
        match Registry::open_with(storage.clone(), DurabilityPolicy::default()) {
            Err(_) => {}
            Ok(registry) => {
                if let Some(project) = registry.get("chaos") {
                    let v = project.version() as usize;
                    assert!(v <= BATCHES, "short read inflated version to {v}");
                    assert_eq!(project.summary().event_count as usize, v);
                }
            }
        }
        // The underlying bytes were never harmed: a clean reopen sees
        // the full state.
        let reopened = Registry::open_with(
            Arc::new(MemStorage::from_map(bytes.clone())),
            DurabilityPolicy::default(),
        )
        .expect("clean reopen");
        assert_eq!(
            reopened.get("chaos").expect("project").version() as usize,
            BATCHES
        );
    }
}

/// Overload admission control over real TCP: with one worker pinned by
/// an idle connection and a one-slot queue occupied, the next
/// connection is shed with `503` + `Retry-After` — and the server is
/// still alive afterwards.
#[test]
fn saturated_queue_sheds_with_retry_after_and_server_stays_live() {
    let handle = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        retry_after_secs: 7,
        flush_interval: None,
        quiet: true,
        ..ServerConfig::default()
    })
    .expect("spawn");
    let addr = handle.addr().to_string();

    // Pin the single worker: an accepted connection that never sends a
    // request keeps it blocked in `read_request`.
    let pin = std::net::TcpStream::connect(&addr).expect("pin connects");
    std::thread::sleep(Duration::from_millis(300));
    // Fill the one queue slot the same way.
    let fill = std::net::TcpStream::connect(&addr).expect("fill connects");
    std::thread::sleep(Duration::from_millis(300));

    // The next request cannot be admitted: shed, with Retry-After.
    let (status, retry_after, body) =
        client_request_full(&addr, "GET", "/healthz", None).expect("shed response");
    assert_eq!(status, 503, "{body}");
    assert_eq!(retry_after, Some(7), "shed must carry Retry-After");
    let shed = handle
        .state()
        .metrics
        .requests_shed
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(shed >= 1, "shed counter not bumped");

    // Release the worker and the queue: the server serves again.
    drop(pin);
    drop(fill);
    std::thread::sleep(Duration::from_millis(300));
    let (status, body) = client_request(&addr, "GET", "/healthz", None).expect("revived");
    assert_eq!(status, 200, "{body}");
    handle.shutdown();
}
