//! Chaos-recovery cases for the streaming monitor (DESIGN §16): the
//! chart journal must replay to exactly the acknowledged-ingest
//! prefix, no matter how the `.mon` file and the data log disagree
//! after a crash.
//!
//! Two failure shapes are exercised directly on storage snapshots:
//!
//! 1. a torn `.mon` tail (garbage or a half-written frame) — recovery
//!    truncates to the last valid frame and the catch-up path rescores
//!    the missing gap bitwise-identically;
//! 2. a `.mon` journal *ahead* of the data log (chart points and
//!    alerts for events the registry never acknowledged) — recovery
//!    drops the unacknowledged suffix, rewrites the journal to the
//!    acknowledged prefix, and a replayed ingest reproduces the
//!    original journal bitwise.

use nhpp_data::sys17;
use nhpp_serve::routes::handle;
use nhpp_serve::scheduler::FitSettings;
use nhpp_serve::{
    AppState, DurabilityPolicy, FitCache, MemStorage, Metrics, Monitor, MonitorConfig, Registry,
    Request, Storage,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn request(method: &str, path_and_query: &str, body: &str) -> Request {
    let (path, query_text) = match path_and_query.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path_and_query, ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_text.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        body: body.as_bytes().to_vec(),
    }
}

fn sys17_batch() -> String {
    let mut text = format!("# t_end={}\n", sys17::T_END);
    for t in sys17::FAILURE_TIMES {
        text.push_str(&format!("{t}\n"));
    }
    text
}

fn burst_batch() -> String {
    let mut text = format!("# t_end={}\n", sys17::T_END + 1.0);
    for i in 1..=5 {
        text.push_str(&format!("{}\n", sys17::T_END + f64::from(i) * 0.01));
    }
    text
}

/// Boots a monitored server over the given storage snapshot.
fn boot(files: BTreeMap<String, Vec<u8>>) -> (AppState, Arc<MemStorage>) {
    let mem = Arc::new(MemStorage::from_map(files));
    let storage: Arc<dyn Storage> = mem.clone();
    let registry =
        Registry::open_with(storage, DurabilityPolicy::default()).expect("registry opens");
    let monitor = Monitor::recover(MonitorConfig::default(), &registry).expect("monitor recovers");
    let state = AppState {
        registry,
        metrics: Metrics::new(),
        fit: FitSettings::default(),
        cache: FitCache::new(0),
        retry_after_secs: 1,
        calibration: None,
        monitor: Some(Arc::new(monitor)),
        quiet: true,
    };
    (state, mem)
}

/// Runs the monitored sys17 workload up to (not including) the regime
/// shift and returns the storage snapshot plus the chart snapshot.
fn in_control_run() -> (BTreeMap<String, Vec<u8>>, String) {
    let (state, mem) = boot(BTreeMap::new());
    let create = handle(
        &state,
        &request(
            "PUT",
            "/projects/p?kind=times&model=go&prior=paper-info-times",
            "",
        ),
    );
    assert_eq!(create.status, 201, "{}", create.body);
    let ingest = handle(&state, &request("POST", "/projects/p/events", &sys17_batch()));
    assert_eq!(ingest.status, 200, "{}", ingest.body);
    // Catch-up through the chart route: fit once, score every gap.
    let chart = handle(&state, &request("GET", "/projects/p/monitor", ""));
    assert_eq!(chart.status, 200, "{}", chart.body);
    let snapshot = format!("{:?}", state.monitor.as_ref().unwrap().snapshot("p"));
    (mem.dump(), snapshot)
}

#[test]
fn torn_mon_tail_is_truncated_and_rescored() {
    let (reference, reference_snapshot) = in_control_run();
    let journal = reference.get("p.mon").expect("journal exists").clone();
    assert!(!journal.is_empty());

    // A garbage suffix (a torn frame that never completed) is dropped
    // without losing any valid record: the recovered chart is bitwise
    // the reference.
    let mut torn = reference.clone();
    torn.insert("p.mon".into(), {
        let mut bytes = journal.clone();
        bytes.extend_from_slice(b"\x07garbage-torn-frame");
        bytes
    });
    let (state, mem) = boot(torn);
    assert_eq!(
        mem.dump().get("p.mon"),
        Some(&journal),
        "garbage tail should be truncated away on recovery"
    );
    assert_eq!(
        format!("{:?}", state.monitor.as_ref().unwrap().snapshot("p")),
        reference_snapshot
    );

    // Chopping into the last frame loses exactly that record; the
    // surviving prefix is untouched and catch-up rescores the missing
    // gap against the same (deterministic) fit, so the journal
    // converges back to the reference bitwise.
    let mut short = reference.clone();
    short.insert("p.mon".into(), journal[..journal.len() - 4].to_vec());
    let (state, mem) = boot(short);
    let recovered = mem.dump().get("p.mon").cloned().expect("journal survives");
    assert!(recovered.len() < journal.len());
    assert_eq!(journal[..recovered.len()], recovered[..], "valid prefix kept");
    let monitor = state.monitor.clone().expect("monitor enabled");
    let before = monitor.snapshot("p");
    assert_eq!(before.scored_through, 37, "last point lost with the tear");
    let chart = handle(&state, &request("GET", "/projects/p/monitor", ""));
    assert_eq!(chart.status, 200, "{}", chart.body);
    assert_eq!(monitor.snapshot("p").scored_through, 38);
    assert_eq!(
        mem.dump().get("p.mon"),
        Some(&journal),
        "rescored journal must be bitwise the reference"
    );
    assert_eq!(format!("{:?}", monitor.snapshot("p")), reference_snapshot);
}

#[test]
fn chart_journal_ahead_of_data_log_replays_to_acknowledged_prefix() {
    // Full run including the regime shift, capturing storage both
    // before and after the burst.
    let (before_burst, _) = in_control_run();
    let (state, mem) = boot(before_burst.clone());
    // Prime the fit cache (a fresh boot has none) so the burst is
    // scored inline rather than deferred.
    let chart = handle(&state, &request("GET", "/projects/p/monitor", ""));
    assert_eq!(chart.status, 200, "{}", chart.body);
    let ingest = handle(&state, &request("POST", "/projects/p/events", &burst_batch()));
    assert_eq!(ingest.status, 200, "{}", ingest.body);
    assert!(ingest.body.contains("\"alerts\": 2"), "{}", ingest.body);
    let after_burst = mem.dump();
    let acknowledged = before_burst.get("p.mon").expect("prefix journal").clone();
    let full = after_burst.get("p.mon").expect("full journal").clone();
    assert!(full.len() > acknowledged.len());

    // Crash shape: the chart journal reached storage but the burst's
    // data-log append did not — the monitor knows about events the
    // registry never acknowledged.
    let mut mixed = before_burst.clone();
    mixed.insert("p.mon".into(), full.clone());
    let (state, mem) = boot(mixed);
    let monitor = state.monitor.clone().expect("monitor enabled");
    assert_eq!(
        mem.dump().get("p.mon"),
        Some(&acknowledged),
        "recovery must rewrite the journal to the acknowledged-ingest prefix"
    );
    let snap = monitor.snapshot("p");
    assert_eq!(snap.scored_through, 38, "unacknowledged points dropped");
    assert_eq!(
        monitor.total_alerts(),
        0,
        "alerts for unacknowledged events are discarded"
    );

    // Replaying the lost ingest reproduces the original journal and
    // alerts bitwise: same data, same fit, same scores.
    let chart = handle(&state, &request("GET", "/projects/p/monitor", ""));
    assert_eq!(chart.status, 200, "{}", chart.body);
    let ingest = handle(&state, &request("POST", "/projects/p/events", &burst_batch()));
    assert_eq!(ingest.status, 200, "{}", ingest.body);
    assert!(ingest.body.contains("\"alerts\": 2"), "{}", ingest.body);
    assert_eq!(
        mem.dump().get("p.mon"),
        Some(&full),
        "replayed journal must be bitwise the pre-crash journal"
    );
    assert_eq!(monitor.total_alerts(), 2);
}
