//! Chart-update determinism suite (DESIGN §16): the streaming monitor's
//! journalled state is a pure function of the ingested data and the
//! SIMD dispatch — for a fixed forced lane width, every fit thread
//! count must produce bitwise-identical `.mon` journals, because the
//! chart statistics are pure functions of `(posterior, t, τ)` and the
//! posterior itself is bitwise-stable across thread counts (§14).
//!
//! The workload deliberately crosses every monitor code path: a
//! deferred first ingest, a catch-up fit through the chart route, an
//! in-control stretch, and an injected regime shift whose alert
//! triggers a refit.

use nhpp_data::sys17;
use nhpp_serve::routes::handle;
use nhpp_serve::scheduler::FitSettings;
use nhpp_serve::{
    AppState, DurabilityPolicy, FitCache, MemStorage, Metrics, Monitor, MonitorConfig, Registry,
    Request, Storage,
};
use nhpp_vb::SimdPolicy;
use std::collections::BTreeMap;
use std::sync::Arc;

fn request(method: &str, path_and_query: &str, body: &str) -> Request {
    let (path, query_text) = match path_and_query.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path_and_query, ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_text.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }
    Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        body: body.as_bytes().to_vec(),
    }
}

fn sys17_batch() -> String {
    let mut text = format!("# t_end={}\n", sys17::T_END);
    for t in sys17::FAILURE_TIMES {
        text.push_str(&format!("{t}\n"));
    }
    text
}

fn burst_batch() -> String {
    let mut text = format!("# t_end={}\n", sys17::T_END + 1.0);
    for i in 1..=5 {
        text.push_str(&format!("{}\n", sys17::T_END + f64::from(i) * 0.01));
    }
    text
}

/// One complete monitored workload under a forced dispatch and thread
/// count; returns the raw `.mon` journal, the alert total, and the
/// final chart-route body.
fn run(lanes: SimdPolicy, threads: usize) -> (Vec<u8>, u64, String) {
    let mem = Arc::new(MemStorage::new());
    let storage: Arc<dyn Storage> = mem.clone();
    let registry =
        Registry::open_with(storage, DurabilityPolicy::default()).expect("registry opens");
    let monitor = Monitor::recover(MonitorConfig::default(), &registry).expect("monitor recovers");
    let mut fit = FitSettings::default();
    fit.options.base.lanes = lanes;
    fit.threads = threads;
    let state = AppState {
        registry,
        metrics: Metrics::new(),
        fit,
        cache: FitCache::new(0),
        retry_after_secs: 1,
        calibration: None,
        monitor: Some(Arc::new(monitor)),
        quiet: true,
    };

    // Delayed s-shaped (alpha0 = 2) on times data goes through the
    // lane-parallel recurrence, so the forced dispatch is genuinely
    // recorded; GO/times would take the closed form and pin width 1.
    let create = handle(
        &state,
        &request(
            "PUT",
            "/projects/p?kind=times&model=dss&prior=paper-info-times",
            "",
        ),
    );
    assert_eq!(create.status, 201, "{}", create.body);
    // Deferred: no posterior exists yet.
    let ingest = handle(&state, &request("POST", "/projects/p/events", &sys17_batch()));
    assert_eq!(ingest.status, 200, "{}", ingest.body);
    assert!(ingest.body.contains("\"alerts\": 0"), "{}", ingest.body);
    // Catch-up: one fit, every gap scored.
    let chart = handle(&state, &request("GET", "/projects/p/monitor", ""));
    assert_eq!(chart.status, 200, "{}", chart.body);
    // Regime shift: scored inline against the cached fit, alerts fire,
    // and the alerts trigger a refit at the new data version.
    let ingest = handle(&state, &request("POST", "/projects/p/events", &burst_batch()));
    assert_eq!(ingest.status, 200, "{}", ingest.body);
    assert!(
        ingest.body.contains("\"alerts\": 2"),
        "both schemes should alarm on the burst: {}",
        ingest.body
    );
    let chart = handle(&state, &request("GET", "/projects/p/monitor", ""));
    assert_eq!(chart.status, 200, "{}", chart.body);

    let monitor = state.monitor.as_ref().expect("monitor enabled");
    let journal = mem
        .dump()
        .get("p.mon")
        .cloned()
        .expect("chart journal exists");
    (journal, monitor.total_alerts(), chart.body.clone())
}

#[test]
fn chart_journals_are_bitwise_identical_across_thread_counts() {
    for (lanes, width) in [
        (SimdPolicy::ForceScalar, 1u64),
        (SimdPolicy::ForceWide, 4),
        (SimdPolicy::ForceWide8, 8),
    ] {
        let (reference, alerts, body) = run(lanes, 1);
        assert_eq!(alerts, 2, "{lanes:?}");
        assert!(
            body.contains(&format!("\"lane_width\": {width}")),
            "{lanes:?}: recorded lane width should be {width}: {body}"
        );
        assert!(
            body.contains("\"scored_through\": 43"),
            "{lanes:?}: {body}"
        );
        for threads in [2usize, 8] {
            let (journal, alerts, other_body) = run(lanes, threads);
            assert_eq!(alerts, 2, "{lanes:?} x{threads}");
            assert_eq!(
                journal, reference,
                "{lanes:?}: .mon journal differs between 1 and {threads} fit threads"
            );
            assert_eq!(
                other_body, body,
                "{lanes:?}: chart route body differs between 1 and {threads} fit threads"
            );
        }
    }
}

/// The recorded `lane_width` provenance is enough to replay a journal
/// bitwise: re-running under the dispatch a journal records reproduces
/// that journal exactly (here: every forced width reproduces itself,
/// and different widths genuinely record different provenance).
#[test]
fn recorded_lane_width_replays_bitwise() {
    let (scalar, _, _) = run(SimdPolicy::ForceScalar, 2);
    let (scalar_again, _, _) = run(SimdPolicy::ForceScalar, 4);
    assert_eq!(scalar, scalar_again, "scalar replay must be bitwise");
    let (wide8, _, _) = run(SimdPolicy::ForceWide8, 2);
    let (wide8_again, _, _) = run(SimdPolicy::ForceWide8, 4);
    assert_eq!(wide8, wide8_again, "wide8 replay must be bitwise");
    let text_scalar = String::from_utf8_lossy(&scalar).to_string();
    let text_wide8 = String::from_utf8_lossy(&wide8).to_string();
    assert!(text_scalar.contains(" 1 "), "scalar provenance recorded");
    assert!(text_wide8.contains(" 8 "), "wide8 provenance recorded");
}
