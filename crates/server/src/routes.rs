//! The HTTP endpoint surface, as a pure function from request to
//! response — no sockets here, so every route is unit-testable without
//! binding a port.
//!
//! | Route | Purpose |
//! |---|---|
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /projects` | list projects |
//! | `PUT /projects/{id}?kind=&model=&prior=` | create a project |
//! | `GET /projects/{id}` | project summary |
//! | `POST /projects/{id}/events` | ingest a CSV batch |
//! | `GET /projects/{id}/fit` | posterior summary (refits if stale) |
//! | `GET /projects/{id}/interval?param=&level=` | credible interval |
//! | `GET /projects/{id}/band?points=&level=` | `Λ(t)` credible band |
//! | `GET /projects/{id}/predict?window=&level=` | residual failures |
//! | `GET /projects/{id}/reliability?window=&level=` | reliability |
//! | `GET /projects/{id}/spc` | control-limit check on newest gap |
//! | `GET /projects/{id}/monitor` | control-chart state (catch-up scores) |
//! | `GET /monitor/status` | all charts + alert totals |
//! | `GET /monitor/alerts?since=` | one-shot alert fetch |
//! | `GET /monitor/wait?since=&timeout_ms=` | long-poll alert subscription |
//!
//! Fit failures answer `503` with a structured body carrying the
//! cascade's [`nhpp_vb::FitReport`] essentials — the failure kind,
//! whether a solve budget was exhausted, and the fallback tier reached
//! — so operators see *why* without grepping server logs.

use crate::http::{Request, Response};
use crate::monitor::{Alert, ChartPoint, ChartSnapshot};
use crate::registry::{CreateOutcome, ProjectConfig, RegistryError};
use crate::scheduler::{cached_fit, ensure_fit, FitServeError};
use crate::server::AppState;
use nhpp_models::spc::ChartStatus;
use nhpp_models::Posterior;
use nhpp_vb::calibration::{dictionary_key, prior_informativeness};
use nhpp_vb::{Calibration, FailureKind, FitFailure};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::time::Duration;

// The control limits moved to `nhpp_models::spc` when the streaming
// monitor joined the one-shot route; re-exported so existing callers
// keep their import path.
pub use nhpp_models::spc::{SPC_CL, SPC_LCL, SPC_UCL};

/// Long-poll ceiling for `/monitor/wait`: safely inside the server's
/// 30 s connection read timeout and the client's 60 s response timeout.
const MAX_WAIT_MS: f64 = 25_000.0;

/// Escapes a string into a JSON literal.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a number as JSON; non-finite values become `null` (JSON has
/// no NaN, and a query must not produce an unparsable body).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\": {}}}", jstr(message)))
}

fn registry_error(err: &RegistryError) -> Response {
    let status = match err {
        RegistryError::Invalid(_) | RegistryError::Data(_) => 400,
        RegistryError::Conflict(_) => 409,
        RegistryError::Io(_) => 500,
    };
    error_response(status, &err.to_string())
}

/// The `503` body for a failed cascade: the satellite fix that surfaces
/// budget exhaustion and the fallback tier in the HTTP response instead
/// of only in the CLI report. Budget/deadline exhaustion is a load
/// signal, so those responses also carry `Retry-After`.
fn fit_failure_response(failure: &FitFailure, retry_after_secs: u32) -> Response {
    let kind = failure
        .report
        .attempts
        .iter()
        .rev()
        .find_map(|a| a.kind)
        .unwrap_or(FailureKind::Other);
    let tier = match failure.report.fallback_tier() {
        Some(t) => jstr(t),
        None => "null".to_string(),
    };
    let response = Response::json(
        503,
        format!(
            "{{\"error\": {}, \"kind\": {}, \"budget_exhausted\": {}, \
             \"fallback_tier\": {}, \"attempts\": {}}}",
            jstr(&failure.error.to_string()),
            jstr(kind.as_str()),
            failure.report.budget_exhausted(),
            tier,
            failure.report.total_attempts(),
        ),
    );
    if failure.report.budget_exhausted() {
        response.with_retry_after(retry_after_secs)
    } else {
        response
    }
}

fn fit_serve_error(state: &AppState, err: &FitServeError) -> Response {
    match err {
        FitServeError::Registry(e) => registry_error(e),
        FitServeError::Fit(failure) => fit_failure_response(failure, state.retry_after_secs),
        FitServeError::DeadlineExceeded => Response::json(
            503,
            "{\"error\": \"fit deadline exceeded\", \"kind\": \"deadline\"}".to_string(),
        )
        .with_retry_after(state.retry_after_secs),
    }
}

fn parse_f64(req: &Request, key: &str, default: f64) -> Result<f64, Response> {
    match req.param(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| error_response(400, &format!("bad numeric parameter {key}='{raw}'"))),
    }
}

fn parse_u64(req: &Request, key: &str, default: u64) -> Result<u64, Response> {
    match req.param(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| error_response(400, &format!("bad integer parameter {key}='{raw}'"))),
    }
}

fn check_level(level: f64) -> Result<(), Response> {
    if 0.0 < level && level < 1.0 {
        Ok(())
    } else {
        Err(error_response(400, "level must be in (0, 1)"))
    }
}

/// A calibration resolved for one query: the transform plus the
/// provenance echoed back in the response body.
struct AppliedCalibration {
    cal: Calibration,
    key: String,
}

/// Resolves the `calibrated` query parameter against the dictionary
/// loaded at boot. `Ok(None)` means the query did not ask for
/// calibration; a request that asks but cannot be honoured — no
/// dictionary loaded, or no entry for the project's regime × the
/// serving method — is a `400` with a body saying exactly which, never
/// a silently-raw answer.
fn resolve_calibration(
    state: &AppState,
    project: &crate::registry::Project,
    method: &str,
    req: &Request,
) -> Result<Option<AppliedCalibration>, Response> {
    match req.param("calibrated") {
        None | Some("false") | Some("0") => return Ok(None),
        Some("true") | Some("1") => {}
        Some(other) => {
            return Err(error_response(
                400,
                &format!("bad boolean parameter calibrated='{other}'"),
            ))
        }
    }
    let Some(dict) = &state.calibration else {
        state
            .metrics
            .calibration_rejected
            .fetch_add(1, Ordering::Relaxed);
        return Err(error_response(
            400,
            "calibration requested but no dictionary is loaded \
             (start the server with --calibration <file>)",
        ));
    };
    let config = project.config();
    let data = match config.kind.as_str() {
        "times" => "dt",
        _ => "dg",
    };
    let key = dictionary_key(
        &config.model_label,
        data,
        prior_informativeness(&config.prior),
        method,
    );
    match dict.entries.get(&key) {
        Some(entry) => {
            state
                .metrics
                .calibrated_queries
                .fetch_add(1, Ordering::Relaxed);
            Ok(Some(AppliedCalibration {
                cal: Calibration::new(entry.factor),
                key,
            }))
        }
        None => {
            state
                .metrics
                .calibration_rejected
                .fetch_add(1, Ordering::Relaxed);
            Err(error_response(
                400,
                &format!(
                    "no calibration entry for regime '{key}' in dictionary '{}'",
                    dict.label
                ),
            ))
        }
    }
}

/// The provenance object echoed by calibrated responses: which entry
/// was applied and where the dictionary came from, so a served interval
/// is traceable back to the learning sweep that justified it.
fn calibration_json(state: &AppState, applied: Option<&AppliedCalibration>) -> String {
    match (applied, &state.calibration) {
        (Some(applied), Some(dict)) => format!(
            "{{\"key\": {}, \"factor\": {}, \"dictionary\": {}, \"seed\": {}, \
             \"replications\": {}, \"level\": {}}}",
            jstr(&applied.key),
            jnum(applied.cal.factor),
            jstr(&dict.label),
            dict.seed,
            dict.replications,
            jnum(dict.level),
        ),
        _ => "null".to_string(),
    }
}

/// Dispatches one request against the shared state.
pub fn handle(state: &AppState, req: &Request) -> Response {
    let segments = req.segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(200, "{\"status\": \"ok\"}".to_string()),
        ("GET", ["metrics"]) => {
            let mut text = state.metrics.render_with(Some(state.registry.stats()));
            // Dictionary provenance rides along as gauges, so a scrape
            // shows not just *that* calibration is on but *which* table.
            let _ = writeln!(
                text,
                "# HELP nhpp_serve_calibration_loaded Whether a calibration dictionary is loaded."
            );
            let _ = writeln!(text, "# TYPE nhpp_serve_calibration_loaded gauge");
            match &state.calibration {
                Some(dict) => {
                    let _ = writeln!(text, "nhpp_serve_calibration_loaded 1");
                    let _ = writeln!(
                        text,
                        "# HELP nhpp_serve_calibration_entries Entries in the loaded dictionary."
                    );
                    let _ = writeln!(text, "# TYPE nhpp_serve_calibration_entries gauge");
                    let _ = writeln!(
                        text,
                        "nhpp_serve_calibration_entries{{dictionary=\"{}\",seed=\"{:#x}\"}} {}",
                        dict.label,
                        dict.seed,
                        dict.entries.len()
                    );
                }
                None => {
                    let _ = writeln!(text, "nhpp_serve_calibration_loaded 0");
                }
            }
            Response::text(200, text)
        }
        ("GET", ["projects"]) => list_projects(state),
        ("PUT", ["projects", id]) => create_project(state, req, id),
        ("GET", ["projects", id]) => project_summary(state, id),
        ("POST", ["projects", id, "events"]) => ingest_events(state, req, id),
        ("GET", ["projects", id, "fit"]) => fit_summary(state, id),
        ("GET", ["projects", id, "interval"]) => interval(state, req, id),
        ("GET", ["projects", id, "band"]) => band(state, req, id),
        ("GET", ["projects", id, "predict"]) => predict(state, req, id),
        ("GET", ["projects", id, "reliability"]) => reliability(state, req, id),
        ("GET", ["projects", id, "spc"]) => spc(state, req, id),
        ("GET", ["projects", id, "monitor"]) => project_monitor(state, id),
        ("GET", ["monitor", "status"]) => monitor_status(state),
        ("GET", ["monitor", "alerts"]) => monitor_alerts(state, req),
        ("GET", ["monitor", "wait"]) => monitor_wait(state, req),
        ("GET" | "PUT" | "POST", _) => error_response(404, "no such route"),
        _ => error_response(405, "method not allowed"),
    }
}

fn summary_json(summary: &crate::registry::ProjectSummary, fitted_version: Option<u64>) -> String {
    format!(
        "{{\"id\": {}, \"kind\": {}, \"model\": {}, \"prior\": {}, \"version\": {}, \
         \"event_count\": {}, \"observation_end\": {}, \"fitted_version\": {}}}",
        jstr(&summary.id),
        jstr(summary.kind),
        jstr(&summary.model),
        jstr(&summary.prior),
        summary.version,
        summary.event_count,
        jnum(summary.observation_end),
        match fitted_version {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        },
    )
}

fn list_projects(state: &AppState) -> Response {
    let entries: Vec<String> = state
        .registry
        .all()
        .iter()
        .map(|p| summary_json(&p.summary(), cached_fit(p).map(|c| c.version)))
        .collect();
    Response::json(200, format!("{{\"projects\": [{}]}}", entries.join(", ")))
}

fn create_project(state: &AppState, req: &Request, id: &str) -> Response {
    let kind = req.param("kind").unwrap_or("times");
    let Some(model) = req.param("model") else {
        return error_response(400, "missing 'model' parameter");
    };
    let Some(prior) = req.param("prior") else {
        return error_response(400, "missing 'prior' parameter");
    };
    let config = match ProjectConfig::from_labels(kind, model, prior) {
        Ok(c) => c,
        Err(message) => return error_response(400, &message),
    };
    match state.registry.create(id, config) {
        Ok(CreateOutcome::Created) => Response::json(
            201,
            format!("{{\"created\": {}, \"existed\": false}}", jstr(id)),
        ),
        Ok(CreateOutcome::AlreadyExists) => Response::json(
            200,
            format!("{{\"created\": {}, \"existed\": true}}", jstr(id)),
        ),
        Err(err) => registry_error(&err),
    }
}

fn project_summary(state: &AppState, id: &str) -> Response {
    match state.registry.get(id) {
        Some(project) => Response::json(
            200,
            summary_json(&project.summary(), cached_fit(&project).map(|c| c.version)),
        ),
        None => error_response(404, &format!("unknown project '{id}'")),
    }
}

fn ingest_events(state: &AppState, req: &Request, id: &str) -> Response {
    let Some(project) = state.registry.get(id) else {
        return error_response(404, &format!("unknown project '{id}'"));
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return error_response(400, "body must be UTF-8 CSV");
    };
    match project.ingest(text) {
        Ok(added) => {
            state
                .metrics
                .events_ingested
                .fetch_add(added, std::sync::atomic::Ordering::Relaxed);
            // The monitoring hook on the event path: score the new gaps
            // against the cached posterior and surface any change-point
            // alerts they fired right in the ingest response.
            let monitor_field = if state.monitor.is_some() {
                let alerts = crate::monitor::observe_ingest(state, &project);
                format!(", \"alerts\": {alerts}")
            } else {
                String::new()
            };
            Response::json(
                200,
                format!(
                    "{{\"ingested\": {added}, \"version\": {}{monitor_field}}}",
                    project.version()
                ),
            )
        }
        Err(err) => registry_error(&err),
    }
}

/// Runs (or joins, or cache-hits) the fit for the current data version.
fn current_fit(
    state: &AppState,
    id: &str,
) -> Result<(std::sync::Arc<crate::scheduler::CachedFit>, std::sync::Arc<crate::registry::Project>), Response> {
    let Some(project) = state.registry.get(id) else {
        return Err(error_response(404, &format!("unknown project '{id}'")));
    };
    match ensure_fit(&project, &state.fit, &state.metrics) {
        Ok(cached) => {
            // Register the access with the LRU bound; this may evict
            // the coldest cached posterior elsewhere.
            state.cache.touch(&project, &state.metrics);
            Ok((cached, project))
        }
        Err(err) => Err(fit_serve_error(state, &err)),
    }
}

/// The status-check fit source: the cached posterior when one exists —
/// stale by design, since control limits for the newest events must
/// come from the fit computed *before* them — falling back to one
/// coalesced fit only for a never-fitted project. Repeated status
/// queries therefore cost zero refits regardless of ingest churn.
fn cached_or_fit(
    state: &AppState,
    project: &std::sync::Arc<crate::registry::Project>,
) -> Result<std::sync::Arc<crate::scheduler::CachedFit>, Response> {
    if let Some(cached) = cached_fit(project) {
        state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        state.cache.touch(project, &state.metrics);
        return Ok(cached);
    }
    match ensure_fit(project, &state.fit, &state.metrics) {
        Ok(cached) => {
            state.cache.touch(project, &state.metrics);
            Ok(cached)
        }
        Err(err) => Err(fit_serve_error(state, &err)),
    }
}

fn fit_summary(state: &AppState, id: &str) -> Response {
    let (cached, _) = match current_fit(state, id) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let report = &cached.fit.report;
    let posterior = &cached.fit.posterior;
    let warnings: Vec<String> = report.warnings.iter().map(|w| jstr(w)).collect();
    let tier = match report.fallback_tier() {
        Some(t) => jstr(t),
        None => "null".to_string(),
    };
    let mean_n = match posterior.mean_n() {
        Some(v) => jnum(v),
        None => "null".to_string(),
    };
    Response::json(
        200,
        format!(
            "{{\"data_version\": {}, \"method\": {}, \"provenance\": {}, \"attempts\": {}, \
             \"warm_started\": {}, \"budget_exhausted\": {}, \"fallback_tier\": {}, \
             \"warnings\": [{}], \"mean_omega\": {}, \"sd_omega\": {}, \"mean_beta\": {}, \
             \"sd_beta\": {}, \"covariance\": {}, \"mean_n\": {}}}",
            cached.version,
            jstr(posterior.method_name()),
            jstr(report.provenance),
            report.total_attempts(),
            cached.warm_started,
            report.budget_exhausted(),
            tier,
            warnings.join(", "),
            jnum(posterior.mean_omega()),
            jnum(posterior.var_omega().sqrt()),
            jnum(posterior.mean_beta()),
            jnum(posterior.var_beta().sqrt()),
            jnum(posterior.covariance()),
            mean_n,
        ),
    )
}

fn interval(state: &AppState, req: &Request, id: &str) -> Response {
    let level = match parse_f64(req, "level", 0.99) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_level(level) {
        return resp;
    }
    let param = req.param("param").unwrap_or("omega");
    let (cached, project) = match current_fit(state, id) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let posterior = &cached.fit.posterior;
    let applied = match resolve_calibration(state, &project, posterior.method_name(), req) {
        Ok(applied) => applied,
        Err(resp) => return resp,
    };
    let (raw, median) = match param {
        "omega" => (
            posterior.credible_interval_omega(level),
            posterior.quantile_omega(0.5),
        ),
        "beta" => (
            posterior.credible_interval_beta(level),
            posterior.quantile_beta(0.5),
        ),
        other => return error_response(400, &format!("unknown param '{other}' (omega|beta)")),
    };
    let (lo, hi) = match &applied {
        Some(a) => a.cal.interval(median, raw, 0.0),
        None => raw,
    };
    Response::json(
        200,
        format!(
            "{{\"param\": {}, \"level\": {}, \"lo\": {}, \"hi\": {}, \"calibrated\": {}, \
             \"calibration\": {}, \"data_version\": {}}}",
            jstr(param),
            jnum(level),
            jnum(lo),
            jnum(hi),
            applied.is_some(),
            calibration_json(state, applied.as_ref()),
            cached.version,
        ),
    )
}

fn band(state: &AppState, req: &Request, id: &str) -> Response {
    let level = match parse_f64(req, "level", 0.99) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_level(level) {
        return resp;
    }
    let points = match parse_f64(req, "points", 20.0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if !(2.0..=512.0).contains(&points) {
        return error_response(400, "points must be in [2, 512]");
    }
    let (cached, project) = match current_fit(state, id) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let applied =
        match resolve_calibration(state, &project, cached.fit.posterior.method_name(), req) {
            Ok(applied) => applied,
            Err(resp) => return resp,
        };
    let t_end = project.summary().observation_end;
    let n = points as usize;
    let grid: Vec<f64> = (1..=n).map(|i| t_end * i as f64 / n as f64).collect();
    match cached.fit.posterior.mean_value_band(&grid, level) {
        Some(Ok(mut band)) => {
            if let Some(a) = &applied {
                a.cal.apply_band(&mut band);
            }
            let rows: Vec<String> = band
                .iter()
                .map(|p| {
                    format!(
                        "{{\"t\": {}, \"lower\": {}, \"mean\": {}, \"upper\": {}}}",
                        jnum(p.t),
                        jnum(p.lower),
                        jnum(p.mean),
                        jnum(p.upper)
                    )
                })
                .collect();
            Response::json(
                200,
                format!(
                    "{{\"level\": {}, \"band\": [{}], \"calibrated\": {}, \
                     \"calibration\": {}, \"data_version\": {}}}",
                    jnum(level),
                    rows.join(", "),
                    applied.is_some(),
                    calibration_json(state, applied.as_ref()),
                    cached.version
                ),
            )
        }
        Some(Err(err)) => error_response(500, &err.to_string()),
        None => error_response(
            409,
            &format!(
                "the posterior was produced by the '{}' fallback tier, which has no \
                 mixture representation to integrate a band over",
                cached.fit.report.provenance
            ),
        ),
    }
}

fn predict(state: &AppState, req: &Request, id: &str) -> Response {
    let level = match parse_f64(req, "level", 0.99) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_level(level) {
        return resp;
    }
    let window = match parse_f64(req, "window", 0.0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if window.is_nan() || window <= 0.0 {
        return error_response(400, "window must be positive");
    }
    let (cached, project) = match current_fit(state, id) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let t = project.summary().observation_end;
    match cached.fit.posterior.predictive_failures(t, window) {
        Ok(counts) => {
            let interval = match counts.interval(level) {
                Some((lo, hi)) => format!("[{lo}, {hi}]"),
                None => "null".to_string(),
            };
            Response::json(
                200,
                format!(
                    "{{\"t\": {}, \"window\": {}, \"mean\": {}, \"variance\": {}, \
                     \"prob_zero\": {}, \"level\": {}, \"interval\": {}, \"data_version\": {}}}",
                    jnum(t),
                    jnum(window),
                    jnum(counts.mean()),
                    jnum(counts.variance()),
                    jnum(counts.prob_zero()),
                    jnum(level),
                    interval,
                    cached.version,
                ),
            )
        }
        Err(err) => error_response(500, &err.to_string()),
    }
}

fn reliability(state: &AppState, req: &Request, id: &str) -> Response {
    let level = match parse_f64(req, "level", 0.99) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(resp) = check_level(level) {
        return resp;
    }
    let window = match parse_f64(req, "window", 0.0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if window.is_nan() || window <= 0.0 {
        return error_response(400, "window must be positive");
    }
    let (cached, project) = match current_fit(state, id) {
        Ok(pair) => pair,
        Err(resp) => return resp,
    };
    let t = project.summary().observation_end;
    let point = cached.fit.posterior.reliability_point(t, window);
    let (lo, hi) = cached.fit.posterior.reliability_interval(t, window, level);
    Response::json(
        200,
        format!(
            "{{\"t\": {}, \"window\": {}, \"point\": {}, \"level\": {}, \"lo\": {}, \
             \"hi\": {}, \"data_version\": {}}}",
            jnum(t),
            jnum(window),
            jnum(point),
            jnum(level),
            jnum(lo),
            jnum(hi),
            cached.version,
        ),
    )
}

/// SPC control-limit check on the newest inter-failure time (ordered
/// statistics chart of Rao et al.): the plotted statistic is
/// `p = P(T ≤ τ | D) = 1 − E[R(t_{m−1} + τ | t_{m−1})]` — the posterior
/// probability of seeing the newest gap `τ` or shorter. `p` below the
/// LCL means failures are arriving much faster than the fitted process
/// predicts (reliability deterioration); above the UCL, much slower
/// (significant improvement). Sourced from the version-keyed fit cache
/// via [`cached_or_fit`]: status checks never trigger refits of their
/// own once a posterior exists.
fn spc(state: &AppState, req: &Request, id: &str) -> Response {
    let Some(project) = state.registry.get(id) else {
        return error_response(404, &format!("unknown project '{id}'"));
    };
    let Some((t_prev, t_last)) = project.newest_gap() else {
        return error_response(
            409,
            "SPC needs a times project with at least two recorded failures",
        );
    };
    let cached = match cached_or_fit(state, &project) {
        Ok(cached) => cached,
        Err(resp) => return resp,
    };
    let applied =
        match resolve_calibration(state, &project, cached.fit.posterior.method_name(), req) {
            Ok(applied) => applied,
            Err(resp) => return resp,
        };
    let tau = t_last - t_prev;
    // An under-dispersed posterior reports the observed gap as more
    // extreme than a calibrated one would; the spread factor maps onto
    // the chart as a contraction of the statistic towards the centre
    // line, so calibrated control limits alarm at the rate the regime's
    // measured coverage supports.
    let raw = 1.0 - cached.fit.posterior.reliability_point(t_prev, tau);
    let p = match &applied {
        Some(a) => a.cal.spc_statistic(raw, SPC_CL),
        None => raw,
    };
    let status = if p < SPC_LCL {
        "deterioration-alarm"
    } else if p > SPC_UCL {
        "improvement"
    } else {
        "in-control"
    };
    Response::json(
        200,
        format!(
            "{{\"t_prev\": {}, \"t_last\": {}, \"gap\": {}, \"p\": {}, \"lcl\": {}, \
             \"cl\": {}, \"ucl\": {}, \"status\": {}, \"calibrated\": {}, \
             \"calibration\": {}, \"data_version\": {}}}",
            jnum(t_prev),
            jnum(t_last),
            jnum(tau),
            jnum(p),
            jnum(SPC_LCL),
            jnum(SPC_CL),
            jnum(SPC_UCL),
            jstr(status),
            applied.is_some(),
            calibration_json(state, applied.as_ref()),
            cached.version,
        ),
    )
}

// ---------------------------------------------------------------------
// Streaming-monitor routes.
// ---------------------------------------------------------------------

fn point_json(p: &ChartPoint) -> String {
    format!(
        "{{\"index\": {}, \"fit_version\": {}, \"lane_width\": {}, \"t_prev\": {}, \
         \"t\": {}, \"p_os\": {}, \"p_mmle\": {}, \"status_os\": {}, \"status_mmle\": {}}}",
        p.index,
        p.fit_version,
        p.lane_width,
        jnum(p.t_prev),
        jnum(p.t),
        jnum(p.p_os),
        jnum(p.p_mmle),
        jstr(p.status_os.as_str()),
        jstr(p.status_mmle.as_str()),
    )
}

fn alert_json(a: &Alert) -> String {
    format!(
        "{{\"seq\": {}, \"project\": {}, \"scheme\": {}, \"side\": {}, \"run\": {}, \
         \"index\": {}, \"t\": {}, \"p\": {}, \"fit_version\": {}, \"refit_version\": {}}}",
        a.seq,
        jstr(&a.project),
        jstr(a.scheme.as_str()),
        jstr(a.side.as_str()),
        a.run,
        a.index,
        jnum(a.t),
        jnum(a.p),
        a.fit_version,
        match a.refit_version {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        },
    )
}

fn run_json(run: Option<(ChartStatus, u32)>) -> String {
    match run {
        Some((side, length)) => format!(
            "{{\"side\": {}, \"length\": {length}}}",
            jstr(side.as_str())
        ),
        None => "null".to_string(),
    }
}

fn snapshot_json(snap: &ChartSnapshot) -> String {
    let tail: Vec<String> = snap.tail.iter().map(point_json).collect();
    format!(
        "{{\"scored_through\": {}, \"counts_os\": [{}, {}, {}], \
         \"counts_mmle\": [{}, {}, {}], \"run_os\": {}, \"run_mmle\": {}, \
         \"last\": {}, \"tail\": [{}]}}",
        snap.scored_through,
        snap.counts_os[0],
        snap.counts_os[1],
        snap.counts_os[2],
        snap.counts_mmle[0],
        snap.counts_mmle[1],
        snap.counts_mmle[2],
        run_json(snap.run_os),
        run_json(snap.run_mmle),
        match &snap.last {
            Some(p) => point_json(p),
            None => "null".to_string(),
        },
        tail.join(", "),
    )
}

fn alerts_body(alerts: &[Alert], next_since: u64, dropped: bool) -> String {
    let rows: Vec<String> = alerts.iter().map(alert_json).collect();
    format!(
        "{{\"alerts\": [{}], \"next_since\": {next_since}, \"dropped\": {dropped}}}",
        rows.join(", ")
    )
}

fn monitor_disabled() -> Response {
    error_response(
        409,
        "monitoring is disabled (start the server with --monitor)",
    )
}

/// One project's chart. Scores any events the ingest path could not
/// (no posterior yet, or alerts deferred) before snapshotting, so the
/// response always reflects every acknowledged event.
fn project_monitor(state: &AppState, id: &str) -> Response {
    let Some(monitor) = &state.monitor else {
        return monitor_disabled();
    };
    let Some(project) = state.registry.get(id) else {
        return error_response(404, &format!("unknown project '{id}'"));
    };
    if project.times_from(0).is_none() {
        return error_response(409, "monitoring requires a times project");
    }
    let alerts = match crate::monitor::catch_up(state, &project) {
        Ok(n) => n,
        Err(err) => return fit_serve_error(state, &err),
    };
    let snap = monitor.snapshot(id);
    Response::json(
        200,
        format!(
            "{{\"project\": {}, \"scheme\": {}, \"run_length\": {}, \"lcl\": {}, \
             \"cl\": {}, \"ucl\": {}, \"alerts_fired\": {alerts}, \"chart\": {}}}",
            jstr(id),
            jstr(monitor.config().schemes.as_str()),
            monitor.config().run_length,
            jnum(SPC_LCL),
            jnum(SPC_CL),
            jnum(SPC_UCL),
            snapshot_json(&snap),
        ),
    )
}

fn monitor_status(state: &AppState) -> Response {
    let Some(monitor) = &state.monitor else {
        return monitor_disabled();
    };
    let charts: Vec<String> = monitor
        .charts()
        .iter()
        .map(|(id, snap)| {
            format!(
                "{{\"project\": {}, \"chart\": {}}}",
                jstr(id),
                snapshot_json(snap)
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"scheme\": {}, \"run_length\": {}, \"total_alerts\": {}, \"charts\": [{}]}}",
            jstr(monitor.config().schemes.as_str()),
            monitor.config().run_length,
            monitor.total_alerts(),
            charts.join(", "),
        ),
    )
}

fn monitor_alerts(state: &AppState, req: &Request) -> Response {
    let Some(monitor) = &state.monitor else {
        return monitor_disabled();
    };
    let since = match parse_u64(req, "since", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let (alerts, next_since, dropped) = monitor.alerts_since(since);
    Response::json(200, alerts_body(&alerts, next_since, dropped))
}

/// Long-poll subscription: blocks (bounded by [`MAX_WAIT_MS`]) until an
/// alert newer than the `since` cursor exists. An empty `alerts` array
/// means the wait timed out; the client re-polls with the same cursor.
fn monitor_wait(state: &AppState, req: &Request) -> Response {
    let Some(monitor) = &state.monitor else {
        return monitor_disabled();
    };
    let since = match parse_u64(req, "since", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let timeout_ms = match parse_f64(req, "timeout_ms", 15_000.0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if !(0.0..=MAX_WAIT_MS).contains(&timeout_ms) {
        return error_response(
            400,
            &format!("timeout_ms must be in [0, {MAX_WAIT_MS}]"),
        );
    }
    let (alerts, next_since, dropped) =
        monitor.wait_alerts(since, Duration::from_millis(timeout_ms as u64));
    if alerts.is_empty() {
        state
            .metrics
            .monitor_wait_timeouts
            .fetch_add(1, Ordering::Relaxed);
    } else {
        state
            .metrics
            .monitor_wait_delivered
            .fetch_add(1, Ordering::Relaxed);
    }
    Response::json(200, alerts_body(&alerts, next_since, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::scheduler::FitSettings;
    use nhpp_data::sys17;
    use std::collections::BTreeMap;

    fn state() -> AppState {
        AppState {
            registry: Registry::open(None).unwrap(),
            metrics: crate::Metrics::new(),
            fit: FitSettings::default(),
            cache: crate::scheduler::FitCache::new(0),
            retry_after_secs: 1,
            calibration: None,
            monitor: None,
            quiet: true,
        }
    }

    fn get(path: &str) -> Request {
        request("GET", path, "")
    }

    fn request(method: &str, path_and_query: &str, body: &str) -> Request {
        let (path, query_text) = match path_and_query.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path_and_query, ""),
        };
        let mut query = BTreeMap::new();
        for pair in query_text.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.insert(k.to_string(), v.to_string());
        }
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query,
            body: body.as_bytes().to_vec(),
        }
    }

    fn sys17_batch() -> String {
        let mut text = format!("# t_end={}\n", sys17::T_END);
        for t in sys17::FAILURE_TIMES {
            text.push_str(&format!("{t}\n"));
        }
        text
    }

    fn extract_num(body: &str, key: &str) -> f64 {
        let marker = format!("\"{key}\": ");
        let start = body.find(&marker).unwrap_or_else(|| {
            panic!("key {key} not in {body}");
        }) + marker.len();
        let rest = &body[start..];
        let end = rest.find([',', '}', ']']).unwrap();
        rest[..end].trim().parse().unwrap()
    }

    #[test]
    fn health_and_unknown_routes() {
        let state = state();
        assert_eq!(handle(&state, &get("/healthz")).status, 200);
        assert_eq!(handle(&state, &get("/nope")).status, 404);
        assert_eq!(
            handle(&state, &request("DELETE", "/projects/x", "")).status,
            405
        );
    }

    #[test]
    fn full_project_lifecycle_over_routes() {
        let state = state();
        let create = handle(
            &state,
            &request(
                "PUT",
                "/projects/sys17?kind=times&model=go&prior=paper-info-times",
                "",
            ),
        );
        assert_eq!(create.status, 201, "{}", create.body);
        // Idempotent re-create.
        assert_eq!(
            handle(
                &state,
                &request(
                    "PUT",
                    "/projects/sys17?kind=times&model=go&prior=paper-info-times",
                    "",
                ),
            )
            .status,
            200
        );

        let ingest = handle(
            &state,
            &request("POST", "/projects/sys17/events", &sys17_batch()),
        );
        assert_eq!(ingest.status, 200, "{}", ingest.body);
        assert!(ingest.body.contains("\"ingested\": 38"));

        let fit = handle(&state, &get("/projects/sys17/fit"));
        assert_eq!(fit.status, 200, "{}", fit.body);
        assert!(fit.body.contains("\"provenance\": \"vb2\""));
        assert!(fit.body.contains("\"warm_started\": false"));

        // The served interval equals the library's batch fit exactly
        // (same code path, same data).
        let direct = nhpp_vb::Vb2Posterior::fit(
            nhpp_models::ModelSpec::goel_okumoto(),
            nhpp_models::prior::NhppPrior::paper_info_times(),
            &sys17::failure_times().into(),
            nhpp_vb::Vb2Options::default(),
        )
        .unwrap();
        let interval = handle(
            &state,
            &get("/projects/sys17/interval?param=omega&level=0.99"),
        );
        assert_eq!(interval.status, 200);
        let (lo, hi) = direct.credible_interval_omega(0.99);
        assert_eq!(extract_num(&interval.body, "lo"), lo);
        assert_eq!(extract_num(&interval.body, "hi"), hi);

        let rel = handle(
            &state,
            &get("/projects/sys17/reliability?window=1000&level=0.99"),
        );
        assert_eq!(rel.status, 200, "{}", rel.body);
        assert_eq!(
            extract_num(&rel.body, "point"),
            direct.reliability_point(sys17::T_END, 1000.0)
        );

        let predict = handle(&state, &get("/projects/sys17/predict?window=86400"));
        assert_eq!(predict.status, 200, "{}", predict.body);
        assert!(extract_num(&predict.body, "mean") > 0.0);

        let band = handle(&state, &get("/projects/sys17/band?points=5&level=0.9"));
        assert_eq!(band.status, 200, "{}", band.body);
        assert!(band.body.matches("\"t\":").count() == 5);

        let spc = handle(&state, &get("/projects/sys17/spc"));
        assert_eq!(spc.status, 200, "{}", spc.body);
        let p = extract_num(&spc.body, "p");
        assert!(p > 0.0 && p < 1.0, "p={p}");
        assert!(spc.body.contains("\"status\": \"in-control\""), "{}", spc.body);

        // All those queries ran exactly one fit.
        let fits = state
            .metrics
            .fits_total
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(fits, 1, "queries were served from the cached posterior");

        let metrics = handle(&state, &get("/metrics"));
        assert_eq!(metrics.status, 200);
        assert!(
            crate::metrics::scrape_counter(&metrics.body, "nhpp_serve_fits_total") == Some(1)
        );
    }

    fn monitor_state(run_length: u32) -> AppState {
        let mut s = state();
        s.monitor = Some(std::sync::Arc::new(crate::monitor::Monitor::new(
            crate::monitor::MonitorConfig {
                run_length,
                ..crate::monitor::MonitorConfig::default()
            },
            None,
        )));
        s
    }

    #[test]
    fn spc_reads_cached_fit_without_refitting() {
        let state = state();
        handle(
            &state,
            &request(
                "PUT",
                "/projects/p?kind=times&model=go&prior=paper-info-times",
                "",
            ),
        );
        handle(
            &state,
            &request("POST", "/projects/p/events", &sys17_batch()),
        );
        assert_eq!(handle(&state, &get("/projects/p/fit")).status, 200);
        let fits = |state: &AppState| {
            state
                .metrics
                .fits_total
                .load(std::sync::atomic::Ordering::Relaxed)
        };
        assert_eq!(fits(&state), 1);
        // New events bump the data version; the fit is now stale.
        let t_end = sys17::T_END;
        let batch = format!("# t_end={}\n{}\n{}\n", t_end + 200.0, t_end + 50.0, t_end + 100.0);
        assert_eq!(
            handle(&state, &request("POST", "/projects/p/events", &batch)).status,
            200
        );
        // N status queries, zero extra fits: the check deliberately
        // reads the posterior fitted before the events under test.
        for _ in 0..5 {
            let resp = handle(&state, &get("/projects/p/spc"));
            assert_eq!(resp.status, 200, "{}", resp.body);
            assert_eq!(extract_num(&resp.body, "data_version") as u64, 1);
        }
        assert_eq!(fits(&state), 1, "spc status checks must not refit");
        assert!(
            state
                .metrics
                .cache_hits
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 5
        );
    }

    #[test]
    fn monitor_routes_are_409_when_disabled() {
        let state = state();
        for path in [
            "/monitor/status",
            "/monitor/alerts",
            "/monitor/wait?timeout_ms=1",
            "/projects/x/monitor",
        ] {
            let resp = handle(&state, &get(path));
            assert_eq!(resp.status, 409, "{path}: {}", resp.body);
            assert!(resp.body.contains("--monitor"), "{}", resp.body);
        }
    }

    #[test]
    fn ingest_scores_chart_and_regime_shift_raises_alerts() {
        let state = monitor_state(3);
        handle(
            &state,
            &request(
                "PUT",
                "/projects/p?kind=times&model=go&prior=paper-info-times",
                "",
            ),
        );
        // First ingest arrives before any fit: scoring is deferred.
        let ingest = handle(
            &state,
            &request("POST", "/projects/p/events", &sys17_batch()),
        );
        assert!(ingest.body.contains("\"alerts\": 0"), "{}", ingest.body);
        assert_eq!(
            state
                .metrics
                .monitor_deferred
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // The chart route catches up: fits once, scores every gap.
        let chart = handle(&state, &get("/projects/p/monitor"));
        assert_eq!(chart.status, 200, "{}", chart.body);
        assert_eq!(extract_num(&chart.body, "scored_through") as u64, 38);
        let n = sys17::FAILURE_TIMES.len() as u64;
        let points = state
            .metrics
            .monitor_points
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(points, n - 1, "one point per gap");

        // Inject a regime shift: a burst of near-simultaneous failures
        // just past the current observation end. Each tiny gap scores
        // p ≈ λτ « LCL (deterioration side); the third consecutive one
        // trips the run threshold on both schemes. (The gap from the
        // last recorded failure into the burst may land anywhere on the
        // chart, so the burst carries four tiny gaps of its own.)
        let burst: Vec<f64> = (1..=5).map(|i| sys17::T_END + i as f64 * 0.01).collect();
        let mut batch = format!("# t_end={}\n", sys17::T_END + 1.0);
        for t in &burst {
            batch.push_str(&format!("{t}\n"));
        }
        let ingest = handle(&state, &request("POST", "/projects/p/events", &batch));
        assert_eq!(ingest.status, 200, "{}", ingest.body);
        assert!(
            ingest.body.contains("\"alerts\": 2"),
            "os + mmle alerts expected: {}",
            ingest.body
        );
        assert!(
            state
                .metrics
                .monitor_alerts
                .load(std::sync::atomic::Ordering::Relaxed)
                == 2
        );

        // The subscription surfaces them; the long-poll returns at once.
        let alerts = handle(&state, &get("/monitor/alerts?since=0"));
        assert_eq!(alerts.status, 200);
        assert!(
            alerts.body.contains("\"side\": \"deterioration-alarm\""),
            "{}",
            alerts.body
        );
        assert_eq!(extract_num(&alerts.body, "next_since") as u64, 2);
        let wait = handle(&state, &get("/monitor/wait?since=0&timeout_ms=25000"));
        assert_eq!(wait.status, 200);
        assert!(wait.body.contains("\"seq\": 1"), "{}", wait.body);
        assert_eq!(
            state
                .metrics
                .monitor_wait_delivered
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // A caught-up cursor times out empty.
        let wait = handle(&state, &get("/monitor/wait?since=2&timeout_ms=1"));
        assert!(wait.body.contains("\"alerts\": []"), "{}", wait.body);
        assert_eq!(
            state
                .metrics
                .monitor_wait_timeouts
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );

        // Global status sees the chart and the alert total.
        let status = handle(&state, &get("/monitor/status"));
        assert_eq!(status.status, 200);
        assert_eq!(extract_num(&status.body, "total_alerts") as u64, 2);
        assert!(status.body.contains("\"project\": \"p\""), "{}", status.body);

        // Validation still bites.
        assert_eq!(
            handle(&state, &get("/monitor/wait?timeout_ms=60000")).status,
            400
        );
        assert_eq!(
            handle(&state, &get("/monitor/alerts?since=x")).status,
            400
        );
    }

    #[test]
    fn validation_errors_are_4xx() {
        let state = state();
        assert_eq!(
            handle(&state, &request("PUT", "/projects/bad id!", "")).status,
            400
        );
        assert_eq!(
            handle(
                &state,
                &request("PUT", "/projects/x?model=weibull&prior=flat", "")
            )
            .status,
            400
        );
        assert_eq!(handle(&state, &get("/projects/ghost/fit")).status, 404);

        handle(
            &state,
            &request(
                "PUT",
                "/projects/p?kind=times&model=go&prior=paper-info-times",
                "",
            ),
        );
        // No data yet: fitting is a 400, not a crash.
        assert_eq!(handle(&state, &get("/projects/p/fit")).status, 400);
        handle(
            &state,
            &request("POST", "/projects/p/events", "# t_end=10\n1.0\n2.0\n"),
        );
        assert_eq!(
            handle(&state, &get("/projects/p/interval?level=1.5")).status,
            400
        );
        assert_eq!(
            handle(&state, &get("/projects/p/interval?param=sigma")).status,
            400
        );
        assert_eq!(
            handle(&state, &get("/projects/p/predict?window=-1")).status,
            400
        );
        // Malformed batch.
        assert_eq!(
            handle(&state, &request("POST", "/projects/p/events", "nonsense")).status,
            400
        );
    }

    #[test]
    fn fit_failure_surfaces_budget_and_tier_in_body() {
        let mut state = state();
        let mut options = nhpp_vb::RobustOptions::strict();
        options.base.total_budget = Some(1);
        options.retry.max_attempts = 1;
        state.fit = FitSettings {
            options,
            threads: 1,
            deadline: None,
        };
        handle(
            &state,
            &request(
                "PUT",
                "/projects/p?kind=times&model=go&prior=paper-info-times",
                "",
            ),
        );
        handle(
            &state,
            &request("POST", "/projects/p/events", &sys17_batch()),
        );
        let resp = handle(&state, &get("/projects/p/fit"));
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert!(
            resp.body.contains("\"budget_exhausted\": true"),
            "{}",
            resp.body
        );
        assert!(resp.body.contains("\"kind\": \"budget-exhausted\""));
        assert!(resp.body.contains("\"fallback_tier\": null"));
        // Budget exhaustion is a load signal: the response tells the
        // client when to come back.
        assert_eq!(resp.retry_after, Some(1));
    }

    #[test]
    fn deadline_exceeded_maps_to_503_with_retry_after() {
        let state = state();
        let resp = fit_serve_error(&state, &FitServeError::DeadlineExceeded);
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(1));
        assert!(resp.body.contains("\"kind\": \"deadline\""), "{}", resp.body);
    }

    #[test]
    fn expired_request_deadline_fails_fast_over_routes() {
        let mut state = state();
        state.fit.deadline = Some(std::time::Duration::ZERO);
        handle(
            &state,
            &request(
                "PUT",
                "/projects/p?kind=times&model=go&prior=paper-info-times",
                "",
            ),
        );
        handle(
            &state,
            &request("POST", "/projects/p/events", &sys17_batch()),
        );
        let resp = handle(&state, &get("/projects/p/fit"));
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert!(
            resp.body.contains("budget_exhausted") || resp.body.contains("deadline"),
            "{}",
            resp.body
        );
        assert_eq!(resp.retry_after, Some(1), "{}", resp.body);
    }

    #[test]
    fn metrics_route_exposes_durability_counters() {
        let state = state();
        let resp = handle(&state, &get("/metrics"));
        assert_eq!(resp.status, 200);
        assert_eq!(
            crate::metrics::scrape_counter(&resp.body, "nhpp_serve_recovery_torn_tails_total"),
            Some(0),
            "{}",
            resp.body
        );
        assert_eq!(
            crate::metrics::scrape_counter(&resp.body, "nhpp_serve_requests_shed_total"),
            Some(0)
        );
    }
}
