//! Streaming SPC monitoring: per-project control charts scored on every
//! appended failure event, change-point detection with refit-and-alert,
//! and the persistence that lets charts survive a crash.
//!
//! # Charting
//!
//! Every `Times` project carries one chart. Each failure event (from
//! the second onward) contributes one plotted point for the gap it
//! closes, scored under *both* schemes from [`nhpp_models::spc`]: the
//! ordered-statistics statistic from the cached fitted posterior and
//! the MMLE-style plug-in statistic at the posterior means. The fit the
//! point was scored against is pinned into the point (`fit_version`,
//! `lane_width`) — the same provenance contract as served intervals.
//!
//! Scoring deliberately uses [`crate::scheduler::cached_fit`]: the
//! control limits for a new event are *supposed* to come from the fit
//! computed before the event arrived, and an ingest-rate refit storm
//! would defeat the coalescing scheduler. Ingests before the first fit
//! are counted as deferred and scored by the next fit-bearing query.
//!
//! # Change points
//!
//! A [`RunTracker`] per scheme watches for consecutive out-of-control
//! points on one side. When a run reaches the configured length the
//! monitor publishes an [`Alert`], triggers a refit through the
//! coalescing scheduler (the chart's limits should re-anchor on the
//! regime that fired them), and wakes every `/monitor/wait` long-poll.
//!
//! # Determinism and persistence
//!
//! Chart statistics are pure functions of `(posterior, t, τ)`, so for a
//! fixed SIMD dispatch the chart state is bitwise identical across
//! server thread counts (the posterior already is, per DESIGN §14).
//! Points and alerts are journalled to `<id>.mon` through the same
//! [`Storage`] backend as the project logs, as CRC-framed text records
//! whose floats round-trip bitwise through `f64` `Display`. Recovery
//! scans the journal, truncates a torn or corrupt suffix, and drops any
//! record whose event index exceeds the acknowledged-ingest prefix the
//! registry itself recovered — the chart can never claim an event the
//! data log lost. Dropped or never-persisted points are simply rescored
//! on the next observation, which the determinism contract makes safe.

use crate::metrics::Metrics;
use crate::registry::{Project, Registry};
use crate::scheduler::{cached_fit, ensure_fit, CachedFit, FitServeError};
use crate::server::AppState;
use crate::storage::{frame_record, scan_records, Storage};
use nhpp_models::spc::{
    classify, mmle_statistic, ordered_statistic, ChartScheme, ChartStatus, RunTracker,
};
use nhpp_models::ModelSpec;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which chart scheme(s) may raise alerts. Both statistics are always
/// computed and persisted — the selection gates alerting only, so
/// switching schemes later never invalidates a journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeSelect {
    /// Ordered-statistics alerts only.
    Os,
    /// MMLE-style alerts only.
    Mmle,
    /// Either scheme may alert (default).
    Both,
}

impl SchemeSelect {
    /// Keyword form (`os` | `mmle` | `both`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SchemeSelect::Os => "os",
            SchemeSelect::Mmle => "mmle",
            SchemeSelect::Both => "both",
        }
    }

    /// Parses the keyword form.
    ///
    /// # Errors
    ///
    /// A message naming the valid keywords.
    pub fn parse(text: &str) -> Result<SchemeSelect, String> {
        match text {
            "os" => Ok(SchemeSelect::Os),
            "mmle" => Ok(SchemeSelect::Mmle),
            "both" => Ok(SchemeSelect::Both),
            other => Err(format!("unknown monitor scheme '{other}' (os|mmle|both)")),
        }
    }

    /// Whether `scheme` may raise alerts under this selection.
    pub fn active(&self, scheme: ChartScheme) -> bool {
        match self {
            SchemeSelect::Both => true,
            SchemeSelect::Os => scheme == ChartScheme::OrderedStatistics,
            SchemeSelect::Mmle => scheme == ChartScheme::Mmle,
        }
    }
}

/// Monitor tuning, fixed at boot.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Scheme(s) allowed to alert.
    pub schemes: SchemeSelect,
    /// Consecutive out-of-control points on one side that constitute a
    /// regime shift.
    pub run_length: u32,
    /// Recent chart points kept in memory per project (the `tail` array
    /// of the chart route).
    pub tail: usize,
    /// Alerts retained in the in-memory subscription ring.
    pub alert_capacity: usize,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            schemes: SchemeSelect::Both,
            run_length: 3,
            tail: 32,
            alert_capacity: 256,
        }
    }
}

/// One plotted chart point: the gap closing at failure-event `index`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartPoint {
    /// 1-based failure-event index of the point's own time (`≥ 2`).
    pub index: u64,
    /// Data version of the fit the point was scored against.
    pub fit_version: u64,
    /// SIMD lane width recorded by that fit (replay provenance).
    pub lane_width: u64,
    /// Previous failure time.
    pub t_prev: f64,
    /// This failure time.
    pub t: f64,
    /// Ordered-statistics statistic `P(T ≤ τ | D)`.
    pub p_os: f64,
    /// MMLE-style plug-in statistic.
    pub p_mmle: f64,
    /// Classification of `p_os`.
    pub status_os: ChartStatus,
    /// Classification of `p_mmle`.
    pub status_mmle: ChartStatus,
}

/// A published change-point alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Monotone subscription cursor, global across projects (from 1).
    pub seq: u64,
    /// Project whose chart fired.
    pub project: String,
    /// Scheme whose run reached the threshold.
    pub scheme: ChartScheme,
    /// Side of the chart the run was on.
    pub side: ChartStatus,
    /// Run length at the moment of firing.
    pub run: u32,
    /// Event index of the firing point.
    pub index: u64,
    /// Failure time of the firing point.
    pub t: f64,
    /// The firing scheme's statistic at that point.
    pub p: f64,
    /// Fit version the firing point was scored against.
    pub fit_version: u64,
    /// Data version of the refit the alert triggered (`None` when the
    /// refit itself failed; the alert still stands).
    pub refit_version: Option<u64>,
}

/// An alert detected during scoring, before a sequence number and the
/// triggered refit's version are known.
struct PendingAlert {
    scheme: ChartScheme,
    side: ChartStatus,
    run: u32,
    index: u64,
    t: f64,
    p: f64,
    fit_version: u64,
}

/// Mutable chart state of one project.
#[derive(Debug, Default)]
struct ChartState {
    /// 1-based index of the newest failure event consumed by scoring
    /// (points exist for events `2..=scored_through`).
    scored_through: u64,
    /// Status counts per [`ChartStatus::index`], ordered-statistics.
    counts_os: [u64; 3],
    /// Status counts, MMLE scheme.
    counts_mmle: [u64; 3],
    run_os: RunTracker,
    run_mmle: RunTracker,
    last: Option<ChartPoint>,
    tail: VecDeque<ChartPoint>,
}

/// One project's chart.
#[derive(Debug)]
struct ProjectChart {
    mon_name: String,
    state: Mutex<ChartState>,
}

/// A consistent copy of one chart, for serialisation.
#[derive(Debug, Clone)]
pub struct ChartSnapshot {
    /// Newest failure event consumed by scoring.
    pub scored_through: u64,
    /// `[deterioration, in-control, improvement]` counts, OS scheme.
    pub counts_os: [u64; 3],
    /// The same, MMLE scheme.
    pub counts_mmle: [u64; 3],
    /// Active out-of-control run `(side, length)`, OS scheme.
    pub run_os: Option<(ChartStatus, u32)>,
    /// The same, MMLE scheme.
    pub run_mmle: Option<(ChartStatus, u32)>,
    /// Newest plotted point.
    pub last: Option<ChartPoint>,
    /// Recent points, oldest first.
    pub tail: Vec<ChartPoint>,
}

/// The global alert log: a bounded ring plus the subscription cursor.
#[derive(Debug)]
struct AlertLog {
    /// Next sequence number to assign (sequences start at 1).
    next_seq: u64,
    ring: VecDeque<Alert>,
}

/// The monitoring subsystem: per-project charts, the alert ring, and
/// the long-poll wakeup. One instance lives in [`AppState`] when the
/// server was started with monitoring enabled.
#[derive(Debug)]
pub struct Monitor {
    config: MonitorConfig,
    storage: Option<Arc<dyn Storage>>,
    charts: Mutex<BTreeMap<String, Arc<ProjectChart>>>,
    alerts: Mutex<AlertLog>,
    alert_ready: Condvar,
}

impl Monitor {
    /// A fresh monitor over an optional journal backend.
    pub fn new(config: MonitorConfig, storage: Option<Arc<dyn Storage>>) -> Monitor {
        Monitor {
            config,
            storage,
            charts: Mutex::new(BTreeMap::new()),
            alerts: Mutex::new(AlertLog {
                next_seq: 1,
                ring: VecDeque::new(),
            }),
            alert_ready: Condvar::new(),
        }
    }

    /// The boot configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Rebuilds charts from the `<id>.mon` journals next to the
    /// registry's project logs. A torn or corrupt journal suffix is
    /// truncated; any record claiming an event index beyond the
    /// project's recovered (acknowledged) prefix is dropped and the
    /// journal rewritten — the chart replays to exactly the data the
    /// registry itself recovered. Alert sequence numbering resumes
    /// after the highest recovered sequence.
    ///
    /// # Errors
    ///
    /// The underlying storage error; corrupt *contents* never fail the
    /// boot, only unreadable storage does.
    pub fn recover(config: MonitorConfig, registry: &Registry) -> io::Result<Monitor> {
        let storage = registry.storage_handle();
        let monitor = Monitor::new(config, storage.clone());
        let Some(storage) = storage else {
            return Ok(monitor);
        };
        let mut recovered_alerts: Vec<Alert> = Vec::new();
        for project in registry.all() {
            let id = project.id();
            let mon_name = format!("{id}.mon");
            let Some(bytes) = storage.read(&mon_name)? else {
                continue;
            };
            let scan = scan_records(&bytes);
            if scan.stop.is_some() {
                storage.truncate(&mon_name, scan.valid_len)?;
            }
            let event_count = project.summary().event_count;
            let mut kept: Vec<u8> = Vec::new();
            let mut dropped = false;
            let mut points: Vec<ChartPoint> = Vec::new();
            for (tag, body) in &scan.records {
                let keep = match tag {
                    b'P' => match decode_point(body) {
                        Ok(point) if point.index <= event_count => {
                            points.push(point);
                            true
                        }
                        _ => false,
                    },
                    b'A' => match decode_alert(body, id) {
                        Ok(alert) if alert.index <= event_count => {
                            recovered_alerts.push(alert);
                            true
                        }
                        _ => false,
                    },
                    _ => false,
                };
                if keep {
                    kept.extend_from_slice(&frame_record(*tag, body));
                } else {
                    dropped = true;
                }
            }
            if dropped {
                storage.replace(&mon_name, &kept)?;
            }
            if points.is_empty() {
                continue;
            }
            let chart = monitor.chart_for(id);
            let mut state = chart.state.lock().expect("chart state poisoned");
            for point in &points {
                state.counts_os[point.status_os.index()] += 1;
                state.counts_mmle[point.status_mmle.index()] += 1;
                // Rebuild the run trackers by re-observing; fires are
                // discarded — those alerts were published (and journalled)
                // before the crash.
                state.run_os.observe(point.status_os, config.run_length);
                state.run_mmle.observe(point.status_mmle, config.run_length);
                state.scored_through = state.scored_through.max(point.index);
            }
            let tail_from = points.len().saturating_sub(config.tail);
            state.tail = points[tail_from..].iter().cloned().collect();
            state.last = points.last().cloned();
        }
        recovered_alerts.sort_by_key(|a| a.seq);
        let mut log = monitor.alerts.lock().expect("alert log poisoned");
        log.next_seq = recovered_alerts.last().map_or(1, |a| a.seq + 1);
        for alert in recovered_alerts {
            log.ring.push_back(alert);
            while log.ring.len() > config.alert_capacity {
                log.ring.pop_front();
            }
        }
        drop(log);
        Ok(monitor)
    }

    fn chart_for(&self, id: &str) -> Arc<ProjectChart> {
        let mut charts = self.charts.lock().expect("chart map poisoned");
        charts
            .entry(id.to_string())
            .or_insert_with(|| {
                Arc::new(ProjectChart {
                    mon_name: format!("{id}.mon"),
                    state: Mutex::new(ChartState::default()),
                })
            })
            .clone()
    }

    /// A consistent copy of one project's chart (a fresh empty chart
    /// for a project never scored).
    pub fn snapshot(&self, id: &str) -> ChartSnapshot {
        let chart = self.chart_for(id);
        let state = chart.state.lock().expect("chart state poisoned");
        ChartSnapshot {
            scored_through: state.scored_through,
            counts_os: state.counts_os,
            counts_mmle: state.counts_mmle,
            run_os: state.run_os.current(),
            run_mmle: state.run_mmle.current(),
            last: state.last.clone(),
            tail: state.tail.iter().cloned().collect(),
        }
    }

    /// All charts that exist, as `(project id, snapshot)` in id order.
    pub fn charts(&self) -> Vec<(String, ChartSnapshot)> {
        let ids: Vec<String> = self
            .charts
            .lock()
            .expect("chart map poisoned")
            .keys()
            .cloned()
            .collect();
        ids.into_iter()
            .map(|id| {
                let snap = self.snapshot(&id);
                (id, snap)
            })
            .collect()
    }

    /// Total alerts ever published (sequences are dense from 1).
    pub fn total_alerts(&self) -> u64 {
        self.alerts.lock().expect("alert log poisoned").next_seq - 1
    }

    /// Alerts with `seq > since` still held by the ring, oldest first:
    /// `(alerts, next_since, dropped)` where `dropped` reports that the
    /// bounded ring has already discarded part of the requested range.
    pub fn alerts_since(&self, since: u64) -> (Vec<Alert>, u64, bool) {
        let log = self.alerts.lock().expect("alert log poisoned");
        collect_since(&log, since)
    }

    /// Long-poll variant of [`Monitor::alerts_since`]: blocks until an
    /// alert with `seq > since` exists or `timeout` passes. Returns
    /// `(alerts, next_since, dropped)`; an empty list means timeout.
    pub fn wait_alerts(&self, since: u64, timeout: Duration) -> (Vec<Alert>, u64, bool) {
        let deadline = Instant::now() + timeout;
        let mut log = self.alerts.lock().expect("alert log poisoned");
        loop {
            let (alerts, next, dropped) = collect_since(&log, since);
            if !alerts.is_empty() {
                return (alerts, next, dropped);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return (Vec::new(), since, dropped);
            }
            log = self
                .alert_ready
                .wait_timeout(log, remaining)
                .expect("alert log poisoned")
                .0;
        }
    }

    /// Scores every not-yet-charted gap of `project` against `cached`,
    /// journalling the new points. Returns the change-point alerts the
    /// new points fired (run thresholds of active schemes), not yet
    /// sequenced or published.
    fn score(
        &self,
        project: &Project,
        cached: &CachedFit,
        spec: ModelSpec,
        metrics: &Metrics,
    ) -> Vec<PendingAlert> {
        let chart = self.chart_for(project.id());
        let mut state = chart.state.lock().expect("chart state poisoned");
        // The suffix starts one event *before* the first unscored one:
        // that event's time is the left edge of the first new gap.
        let from = (state.scored_through as usize).saturating_sub(1);
        let Some((total, suffix)) = project.times_from(from) else {
            return Vec::new();
        };
        if total <= state.scored_through || suffix.len() < 2 {
            state.scored_through = state.scored_through.max(total);
            return Vec::new();
        }
        let posterior = &cached.fit.posterior;
        let lane_width = cached.fit.report.lane_width as u64;
        let run_length = self.config.run_length;
        let mut pending = Vec::new();
        let mut journal: Vec<u8> = Vec::new();
        let mut scored = 0u64;
        let mut out_of_control = 0u64;
        for (j, pair) in suffix.windows(2).enumerate() {
            let (t_prev, t) = (pair[0], pair[1]);
            let index = (from + j + 2) as u64;
            if index <= state.scored_through {
                continue;
            }
            let tau = t - t_prev;
            let p_os = ordered_statistic(posterior, t_prev, tau);
            let p_mmle = mmle_statistic(spec, posterior, t_prev, tau);
            let point = ChartPoint {
                index,
                fit_version: cached.version,
                lane_width,
                t_prev,
                t,
                p_os,
                p_mmle,
                status_os: classify(p_os),
                status_mmle: classify(p_mmle),
            };
            state.counts_os[point.status_os.index()] += 1;
            state.counts_mmle[point.status_mmle.index()] += 1;
            if point.status_os != ChartStatus::InControl
                || point.status_mmle != ChartStatus::InControl
            {
                out_of_control += 1;
            }
            // Both runs are tracked regardless of the scheme selection
            // (recovery re-observes both), but only active schemes fire.
            let fired_os = state.run_os.observe(point.status_os, run_length);
            let fired_mmle = state.run_mmle.observe(point.status_mmle, run_length);
            for (scheme, fired, p) in [
                (ChartScheme::OrderedStatistics, fired_os, p_os),
                (ChartScheme::Mmle, fired_mmle, p_mmle),
            ] {
                if let Some(side) = fired {
                    if self.config.schemes.active(scheme) {
                        pending.push(PendingAlert {
                            scheme,
                            side,
                            run: run_length.max(1),
                            index,
                            t,
                            p,
                            fit_version: cached.version,
                        });
                    }
                }
            }
            journal.extend_from_slice(&frame_record(b'P', &encode_point(&point)));
            state.tail.push_back(point.clone());
            while state.tail.len() > self.config.tail {
                state.tail.pop_front();
            }
            state.last = Some(point);
            state.scored_through = index;
            scored += 1;
        }
        metrics.monitor_points.fetch_add(scored, Ordering::Relaxed);
        metrics
            .monitor_out_of_control
            .fetch_add(out_of_control, Ordering::Relaxed);
        state.scored_through = total;
        let mon_name = chart.mon_name.clone();
        drop(state);
        if let Some(storage) = &self.storage {
            // One batched append per scoring pass. A failure leaves the
            // points in memory only; they are rescored (bitwise, per the
            // determinism contract) after the next recovery.
            if !journal.is_empty() && storage.append(&mon_name, &journal).is_err() {
                metrics.monitor_persist_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        pending
    }

    /// Sequences, journals, and publishes alerts, waking long-polls.
    /// Returns the number published.
    fn publish(
        &self,
        project_id: &str,
        pending: Vec<PendingAlert>,
        refit_version: Option<u64>,
        metrics: &Metrics,
    ) -> u64 {
        if pending.is_empty() {
            return 0;
        }
        let mut journal: Vec<u8> = Vec::new();
        let published;
        {
            let mut log = self.alerts.lock().expect("alert log poisoned");
            published = pending.len() as u64;
            for p in pending {
                let alert = Alert {
                    seq: log.next_seq,
                    project: project_id.to_string(),
                    scheme: p.scheme,
                    side: p.side,
                    run: p.run,
                    index: p.index,
                    t: p.t,
                    p: p.p,
                    fit_version: p.fit_version,
                    refit_version,
                };
                log.next_seq += 1;
                journal.extend_from_slice(&frame_record(b'A', &encode_alert(&alert)));
                log.ring.push_back(alert);
                while log.ring.len() > self.config.alert_capacity {
                    log.ring.pop_front();
                }
            }
        }
        self.alert_ready.notify_all();
        if let Some(storage) = &self.storage {
            if storage
                .append(&format!("{project_id}.mon"), &journal)
                .is_err()
            {
                metrics.monitor_persist_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        metrics.monitor_alerts.fetch_add(published, Ordering::Relaxed);
        published
    }
}

fn collect_since(log: &AlertLog, since: u64) -> (Vec<Alert>, u64, bool) {
    let dropped = match log.ring.front() {
        Some(front) => front.seq > since + 1 && since + 1 < log.next_seq,
        None => log.next_seq > since + 1,
    };
    let alerts: Vec<Alert> = log
        .ring
        .iter()
        .filter(|a| a.seq > since)
        .cloned()
        .collect();
    let next = alerts.last().map_or(since, |a| a.seq);
    (alerts, next, dropped)
}

// ---------------------------------------------------------------------
// The event-path hooks used by the routes.
// ---------------------------------------------------------------------

/// Scores a project's chart after an accepted ingest, firing any
/// change-point alerts and triggering the refit they call for. Returns
/// the number of alerts published. No-op when monitoring is disabled or
/// the project is grouped; ingests arriving before the first fit are
/// counted as deferred (the next fit-bearing query scores them).
pub fn observe_ingest(state: &AppState, project: &Arc<Project>) -> u64 {
    let Some(monitor) = &state.monitor else {
        return 0;
    };
    if project.times_from(0).is_none() {
        return 0;
    }
    let Some(cached) = cached_fit(project) else {
        state.metrics.monitor_deferred.fetch_add(1, Ordering::Relaxed);
        return 0;
    };
    score_and_alert(state, monitor, project, &cached)
}

/// The chart route's catch-up: like [`observe_ingest`] but a project
/// that has never been fitted is fitted now (through the coalescing
/// scheduler — repeated status queries at one data version still cost
/// zero extra fits).
///
/// # Errors
///
/// [`FitServeError`] when that first fit is needed and fails.
pub fn catch_up(state: &AppState, project: &Arc<Project>) -> Result<u64, FitServeError> {
    let Some(monitor) = &state.monitor else {
        return Ok(0);
    };
    // Fewer than two failures chart nothing; don't force a fit that
    // could not plot a point anyway.
    match project.times_from(0) {
        None => return Ok(0),
        Some((total, _)) if total < 2 => return Ok(0),
        Some(_) => {}
    }
    let cached = match cached_fit(project) {
        Some(cached) => cached,
        None => {
            let cached = ensure_fit(project, &state.fit, &state.metrics)?;
            state.cache.touch(project, &state.metrics);
            cached
        }
    };
    Ok(score_and_alert(state, monitor, project, &cached))
}

fn score_and_alert(
    state: &AppState,
    monitor: &Monitor,
    project: &Arc<Project>,
    cached: &CachedFit,
) -> u64 {
    let spec = project.config().spec;
    let pending = monitor.score(project, cached, spec, &state.metrics);
    if pending.is_empty() {
        return 0;
    }
    // A regime shift means the fitted process no longer describes the
    // stream: re-anchor the chart by refitting at the current data
    // version. Coalesces with any in-flight fit; a cache hit (the
    // posterior is already current) costs nothing and counts nothing.
    let refit_version = match ensure_fit(project, &state.fit, &state.metrics) {
        Ok(refit) => {
            state.cache.touch(project, &state.metrics);
            if refit.version != cached.version {
                state.metrics.monitor_refits.fetch_add(1, Ordering::Relaxed);
            }
            Some(refit.version)
        }
        Err(_) => None,
    };
    monitor.publish(project.id(), pending, refit_version, &state.metrics)
}

// ---------------------------------------------------------------------
// Journal record codecs ('P' chart point, 'A' alert). Text bodies,
// space-separated; floats use `f64` `Display` (shortest round-trip, so
// a decoded record is bit-identical to the state that wrote it, NaN
// included).
// ---------------------------------------------------------------------

fn encode_point(p: &ChartPoint) -> Vec<u8> {
    format!(
        "{} {} {} {} {} {} {} {} {}",
        p.index,
        p.fit_version,
        p.lane_width,
        p.t_prev,
        p.t,
        p.p_os,
        p.p_mmle,
        p.status_os.as_str(),
        p.status_mmle.as_str(),
    )
    .into_bytes()
}

fn decode_point(body: &[u8]) -> Result<ChartPoint, String> {
    let text = std::str::from_utf8(body).map_err(|_| "non-UTF-8 point record".to_string())?;
    let mut it = text.split(' ');
    let mut next = || it.next().ok_or_else(|| "short point record".to_string());
    let parse_u64 =
        |tok: &str| -> Result<u64, String> { tok.parse().map_err(|_| format!("bad int '{tok}'")) };
    let parse_f64 = |tok: &str| -> Result<f64, String> {
        tok.parse().map_err(|_| format!("bad float '{tok}'"))
    };
    let point = ChartPoint {
        index: parse_u64(next()?)?,
        fit_version: parse_u64(next()?)?,
        lane_width: parse_u64(next()?)?,
        t_prev: parse_f64(next()?)?,
        t: parse_f64(next()?)?,
        p_os: parse_f64(next()?)?,
        p_mmle: parse_f64(next()?)?,
        status_os: ChartStatus::parse(next()?)?,
        status_mmle: ChartStatus::parse(next()?)?,
    };
    Ok(point)
}

fn encode_alert(a: &Alert) -> Vec<u8> {
    format!(
        "{} {} {} {} {} {} {} {} {}",
        a.seq,
        a.scheme.as_str(),
        a.side.as_str(),
        a.run,
        a.index,
        a.t,
        a.p,
        a.fit_version,
        match a.refit_version {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        },
    )
    .into_bytes()
}

fn decode_alert(body: &[u8], project: &str) -> Result<Alert, String> {
    let text = std::str::from_utf8(body).map_err(|_| "non-UTF-8 alert record".to_string())?;
    let mut it = text.split(' ');
    let mut next = || it.next().ok_or_else(|| "short alert record".to_string());
    let parse_u64 =
        |tok: &str| -> Result<u64, String> { tok.parse().map_err(|_| format!("bad int '{tok}'")) };
    let alert = Alert {
        seq: parse_u64(next()?)?,
        project: project.to_string(),
        scheme: ChartScheme::parse(next()?)?,
        side: ChartStatus::parse(next()?)?,
        run: next()?
            .parse()
            .map_err(|_| "bad run length".to_string())?,
        index: parse_u64(next()?)?,
        t: next()?.parse().map_err(|_| "bad time".to_string())?,
        p: next()?.parse().map_err(|_| "bad statistic".to_string())?,
        fit_version: parse_u64(next()?)?,
        refit_version: match next()? {
            "-" => None,
            tok => Some(parse_u64(tok)?),
        },
    };
    Ok(alert)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(index: u64, p_os: f64) -> ChartPoint {
        ChartPoint {
            index,
            fit_version: 3,
            lane_width: 8,
            t_prev: 10.0,
            t: 11.5,
            p_os,
            p_mmle: 0.25,
            status_os: classify(p_os),
            status_mmle: ChartStatus::InControl,
        }
    }

    #[test]
    fn point_record_round_trips_bitwise_including_nan() {
        for p_os in [0.001, 0.5, f64::NAN, 1.0 / 3.0, 1e-300] {
            let original = point(7, p_os);
            let decoded = decode_point(&encode_point(&original)).unwrap();
            assert_eq!(decoded.index, original.index);
            assert_eq!(decoded.p_os.to_bits(), original.p_os.to_bits());
            assert_eq!(decoded.t_prev.to_bits(), original.t_prev.to_bits());
            assert_eq!(decoded.status_os, original.status_os);
        }
        assert!(decode_point(b"1 2 3").is_err(), "short record");
        assert!(decode_point(b"x 2 3 4 5 6 7 in-control in-control").is_err());
    }

    #[test]
    fn alert_record_round_trips_with_and_without_refit_version() {
        for refit_version in [Some(9), None] {
            let original = Alert {
                seq: 4,
                project: "p".to_string(),
                scheme: ChartScheme::Mmle,
                side: ChartStatus::Deterioration,
                run: 3,
                index: 12,
                t: 99.5,
                p: 0.0001,
                fit_version: 8,
                refit_version,
            };
            let decoded = decode_alert(&encode_alert(&original), "p").unwrap();
            assert_eq!(decoded, original);
        }
    }

    #[test]
    fn scheme_selection_gates_alerting() {
        assert!(SchemeSelect::Both.active(ChartScheme::OrderedStatistics));
        assert!(SchemeSelect::Both.active(ChartScheme::Mmle));
        assert!(SchemeSelect::Os.active(ChartScheme::OrderedStatistics));
        assert!(!SchemeSelect::Os.active(ChartScheme::Mmle));
        assert!(!SchemeSelect::Mmle.active(ChartScheme::OrderedStatistics));
        assert_eq!(SchemeSelect::parse("both"), Ok(SchemeSelect::Both));
        assert!(SchemeSelect::parse("fast").is_err());
    }

    #[test]
    fn alert_ring_is_bounded_and_reports_dropped_ranges() {
        let monitor = Monitor::new(
            MonitorConfig {
                alert_capacity: 2,
                ..MonitorConfig::default()
            },
            None,
        );
        let metrics = Metrics::new();
        let pending = |i: u64| PendingAlert {
            scheme: ChartScheme::OrderedStatistics,
            side: ChartStatus::Deterioration,
            run: 3,
            index: i,
            t: i as f64,
            p: 0.0001,
            fit_version: 1,
        };
        monitor.publish("p", vec![pending(3), pending(4), pending(5)], Some(2), &metrics);
        assert_eq!(monitor.total_alerts(), 3);
        // Capacity 2: seq 1 was dropped.
        let (alerts, next, dropped) = monitor.alerts_since(0);
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].seq, 2);
        assert_eq!(next, 3);
        assert!(dropped);
        // A cursor inside the retained range sees no gap.
        let (alerts, next, dropped) = monitor.alerts_since(2);
        assert_eq!(alerts.len(), 1);
        assert_eq!(next, 3);
        assert!(!dropped);
        // Fully caught up.
        let (alerts, next, dropped) = monitor.alerts_since(3);
        assert!(alerts.is_empty());
        assert_eq!(next, 3);
        assert!(!dropped);
    }

    #[test]
    fn wait_alerts_times_out_and_wakes_on_publish() {
        let monitor = Arc::new(Monitor::new(MonitorConfig::default(), None));
        let metrics = Metrics::new();
        // Timeout path.
        let started = Instant::now();
        let (alerts, next, _) = monitor.wait_alerts(0, Duration::from_millis(30));
        assert!(alerts.is_empty());
        assert_eq!(next, 0);
        assert!(started.elapsed() >= Duration::from_millis(25));
        // Wake path: a publish from another thread unblocks the wait.
        let waiter = {
            let monitor = Arc::clone(&monitor);
            std::thread::spawn(move || monitor.wait_alerts(0, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        monitor.publish(
            "p",
            vec![PendingAlert {
                scheme: ChartScheme::OrderedStatistics,
                side: ChartStatus::Improvement,
                run: 3,
                index: 5,
                t: 5.0,
                p: 0.9999,
                fit_version: 1,
            }],
            None,
            &metrics,
        );
        let (alerts, next, dropped) = waiter.join().unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].side, ChartStatus::Improvement);
        assert_eq!(alerts[0].refit_version, None);
        assert_eq!(next, 1);
        assert!(!dropped);
    }
}
