//! The storage boundary of the durable registry: a small trait over the
//! handful of filesystem operations the log/snapshot machinery needs,
//! with a real backend, an in-memory backend, and a deterministic
//! fault-injecting backend for crash testing.
//!
//! # Why a trait
//!
//! PR 1 taught the *estimator* to survive its own pathologies by
//! injecting them deterministically through the live code paths
//! ([`nhpp_vb::FaultPlan`]). The registry needs the same treatment for
//! I/O: torn writes, short reads, a full disk, and a failed rename are
//! exactly the crash windows a durable log must survive, and none of
//! them can be provoked reliably against a real filesystem. The
//! [`Storage`] trait makes the registry's durability logic backend
//! agnostic, so the chaos harness can run the *production* replay and
//! compaction code over a [`FaultStorage`] that fails at every
//! injection point in turn.
//!
//! # Record framing
//!
//! Every durable record — log appends and snapshots alike — is framed
//! as `u32 LE length | u32 LE CRC-32 | payload`. The CRC covers the
//! payload only; the length covers the payload only. A record is valid
//! iff the full frame is present *and* the checksum matches, so replay
//! can distinguish a torn tail (crash window residue, silently
//! truncated) from mid-log corruption (counted and truncated, reported
//! by `nhpp fsck`).

use std::collections::BTreeMap;
use std::io::{self, Read as _, Write as _};
use std::path::PathBuf;
use std::sync::Mutex;

/// Hard sanity bound on a single record's payload (16 MiB): a length
/// prefix beyond it is treated as corruption, not an allocation request.
pub const MAX_RECORD_BYTES: usize = 16 << 20;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven — no dependencies.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Record framing.
// ---------------------------------------------------------------------

/// Frames one record (`tag` byte + `body`) for durable storage.
pub fn frame_record(tag: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(tag);
    payload.extend_from_slice(body);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Why a scan stopped before the end of the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStop {
    /// An incomplete frame at the end: the crash window of an append.
    TornTail,
    /// A complete frame whose checksum (or length sanity bound) failed:
    /// true corruption, everything after it is untrusted.
    Corrupt,
}

/// Outcome of scanning a byte stream of framed records.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Fully-validated records, in order: `(tag, body)`.
    pub records: Vec<(u8, Vec<u8>)>,
    /// Byte length of the validated prefix. Everything at and beyond
    /// this offset is torn or corrupt and must be truncated away before
    /// the file is appended to again.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did.
    pub stop: Option<ScanStop>,
}

/// Scans `bytes` into validated records, stopping at the first torn or
/// corrupt frame (see [`ScanOutcome`]).
pub fn scan_records(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut stop = None;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            stop = Some(ScanStop::TornTail);
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD_BYTES {
            // A zero-length record has no tag byte and cannot be
            // produced by `frame_record`; an absurd length is a
            // scribbled prefix. Both are corruption, not a torn append.
            stop = Some(ScanStop::Corrupt);
            break;
        }
        if rest.len() < 8 + len {
            stop = Some(ScanStop::TornTail);
            break;
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            stop = Some(ScanStop::Corrupt);
            break;
        }
        records.push((payload[0], payload[1..].to_vec()));
        offset += 8 + len;
    }
    ScanOutcome {
        records,
        valid_len: offset as u64,
        stop,
    }
}

// ---------------------------------------------------------------------
// The storage trait.
// ---------------------------------------------------------------------

/// The filesystem surface the registry needs, kept deliberately small
/// so a fault-injecting double stays faithful. Names are flat (no
/// directories) and restricted to the registry's id grammar plus an
/// extension.
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// All stored file names (unordered).
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    fn list(&self) -> io::Result<Vec<String>>;

    /// The full contents of `name`, or `None` if it does not exist.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Appends `data` to `name` (creating it if absent), forces it to
    /// stable storage, and returns the file's new length.
    ///
    /// # Errors
    ///
    /// The underlying I/O error; on failure the file may hold any
    /// prefix of `data` (the torn-write crash window).
    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64>;

    /// Atomically replaces the contents of `name` with `data`:
    /// write-temp → fsync → rename, so a crash leaves either the old
    /// or the new contents, never a mixture.
    ///
    /// # Errors
    ///
    /// The underlying I/O error; the visible file is unchanged then.
    fn replace(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Truncates `name` to `len` bytes and syncs.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;

    /// Removes `name` if it exists.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    fn remove(&self, name: &str) -> io::Result<()>;
}

fn check_name(name: &str) -> io::Result<()> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid storage name '{name}'"),
        ))
    }
}

// ---------------------------------------------------------------------
// Real filesystem backend.
// ---------------------------------------------------------------------

/// Durable storage in one flat directory.
#[derive(Debug)]
pub struct FsStorage {
    dir: PathBuf,
}

impl FsStorage {
    /// Opens (creating if necessary) the directory.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn open(dir: &std::path::Path) -> io::Result<FsStorage> {
        std::fs::create_dir_all(dir)?;
        Ok(FsStorage {
            dir: dir.to_path_buf(),
        })
    }

    fn path(&self, name: &str) -> io::Result<PathBuf> {
        check_name(name)?;
        Ok(self.dir.join(name))
    }

    /// Best-effort directory fsync, so renames and creations are
    /// themselves durable on filesystems that need it.
    fn sync_dir(&self) {
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
    }
}

impl Storage for FsStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        let path = self.path(name)?;
        match std::fs::File::open(&path) {
            Ok(mut file) => {
                let mut bytes = Vec::new();
                file.read_to_end(&mut bytes)?;
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64> {
        let path = self.path(name)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        file.write_all(data)?;
        file.sync_data()?;
        Ok(file.metadata()?.len())
    }

    fn replace(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let path = self.path(name)?;
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(data)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        self.sync_dir();
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let path = self.path(name)?;
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let path = self.path(name)?;
        match std::fs::remove_file(&path) {
            Ok(()) => {
                self.sync_dir();
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------
// In-memory backend.
// ---------------------------------------------------------------------

/// Volatile storage: a name → bytes map. The substrate of the fault
/// harness and of storage-level unit tests; `Registry::open(None)`
/// (pure in-memory registries) bypasses storage entirely and does not
/// use this.
#[derive(Debug, Default)]
pub struct MemStorage {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// A store pre-populated with `files` — used by the chaos harness
    /// to "reboot" onto the bytes that survived a crash.
    pub fn from_map(files: BTreeMap<String, Vec<u8>>) -> MemStorage {
        MemStorage {
            files: Mutex::new(files),
        }
    }

    /// A point-in-time copy of every stored file.
    pub fn dump(&self) -> BTreeMap<String, Vec<u8>> {
        self.files.lock().expect("mem storage poisoned").clone()
    }
}

impl Storage for MemStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self
            .files
            .lock()
            .expect("mem storage poisoned")
            .keys()
            .cloned()
            .collect())
    }

    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        check_name(name)?;
        Ok(self
            .files
            .lock()
            .expect("mem storage poisoned")
            .get(name)
            .cloned())
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64> {
        check_name(name)?;
        let mut files = self.files.lock().expect("mem storage poisoned");
        let file = files.entry(name.to_string()).or_default();
        file.extend_from_slice(data);
        Ok(file.len() as u64)
    }

    fn replace(&self, name: &str, data: &[u8]) -> io::Result<()> {
        check_name(name)?;
        self.files
            .lock()
            .expect("mem storage poisoned")
            .insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        check_name(name)?;
        let mut files = self.files.lock().expect("mem storage poisoned");
        match files.get_mut(name) {
            Some(file) => {
                file.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        check_name(name)?;
        self.files.lock().expect("mem storage poisoned").remove(name);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------------

/// Which I/O pathology to force — the storage-layer extension of the
/// estimator's [`nhpp_vb::FaultKind`] idiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// An append persists only a prefix of its bytes, then the process
    /// dies: the classic torn write.
    TornWrite,
    /// A read returns only a prefix of the file: a file truncated by
    /// the crash, or a filesystem serving a short tail.
    ShortRead,
    /// A write fails outright with nothing persisted (`ENOSPC`).
    DiskFull,
    /// An atomic replace writes its temp file but the rename never
    /// lands: the visible file keeps its old contents.
    RenameFail,
}

/// A deterministic schedule: count storage operations and inject
/// `kind` on operation number `fail_at_op` (0-based). After the fault
/// fires the storage is dead — every later operation fails — modelling
/// a process that crashed at that exact point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// 0-based index of the operation to sabotage.
    pub fail_at_op: u64,
    /// The pathology to force.
    pub kind: IoFaultKind,
    /// For [`IoFaultKind::TornWrite`]/[`IoFaultKind::ShortRead`]: the
    /// numerator of the fraction of bytes that survive, over 4 (so
    /// 0 ⇒ nothing, 2 ⇒ half, 3 ⇒ three quarters).
    pub cut_quarters: u8,
}

impl IoFaultPlan {
    /// A plan failing operation `fail_at_op` with `kind`, cutting torn
    /// writes and short reads at half their bytes.
    pub fn at(fail_at_op: u64, kind: IoFaultKind) -> IoFaultPlan {
        IoFaultPlan {
            fail_at_op,
            kind,
            cut_quarters: 2,
        }
    }

    fn cut(&self, len: usize) -> usize {
        len * usize::from(self.cut_quarters.min(4)) / 4
    }
}

#[derive(Debug)]
struct FaultState {
    ops: u64,
    dead: bool,
}

/// A [`MemStorage`] wrapper that injects one deterministic fault and
/// then plays dead (see [`IoFaultPlan`]). [`FaultStorage::survivor`]
/// yields the bytes a reboot would find.
#[derive(Debug)]
pub struct FaultStorage {
    inner: MemStorage,
    plan: IoFaultPlan,
    state: Mutex<FaultState>,
}

impl FaultStorage {
    /// Wraps a fresh in-memory store with the fault plan.
    pub fn new(plan: IoFaultPlan) -> FaultStorage {
        FaultStorage::over(MemStorage::new(), plan)
    }

    /// Wraps an existing in-memory store (e.g. a previous survivor).
    pub fn over(inner: MemStorage, plan: IoFaultPlan) -> FaultStorage {
        FaultStorage {
            inner,
            plan,
            state: Mutex::new(FaultState { ops: 0, dead: false }),
        }
    }

    /// Whether the injected fault has fired yet.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("fault state poisoned").dead
    }

    /// Total operations observed so far (used to size fault sweeps).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault state poisoned").ops
    }

    /// The surviving bytes, as a fresh healthy [`MemStorage`] — what
    /// the filesystem would hold when the crashed process restarts.
    pub fn survivor(&self) -> MemStorage {
        MemStorage::from_map(self.inner.dump())
    }

    /// Charges one operation; `Some(kind)` when this is the sabotaged
    /// one. Errors if the storage already died.
    fn charge(&self) -> io::Result<Option<IoFaultKind>> {
        let mut state = self.state.lock().expect("fault state poisoned");
        if state.dead {
            return Err(dead_err());
        }
        let op = state.ops;
        state.ops += 1;
        if op == self.plan.fail_at_op {
            state.dead = true;
            return Ok(Some(self.plan.kind));
        }
        Ok(None)
    }
}

fn dead_err() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "injected crash: storage is dead")
}

fn injected(kind: IoFaultKind) -> io::Error {
    io::Error::other(format!("injected storage fault: {kind:?}"))
}

impl Storage for FaultStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        match self.charge()? {
            None => self.inner.list(),
            Some(kind) => Err(injected(kind)),
        }
    }

    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match self.charge()? {
            None => self.inner.read(name),
            Some(IoFaultKind::ShortRead) => Ok(self
                .inner
                .read(name)?
                .map(|bytes| bytes[..self.plan.cut(bytes.len())].to_vec())),
            Some(kind) => Err(injected(kind)),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<u64> {
        match self.charge()? {
            None => self.inner.append(name, data),
            Some(IoFaultKind::TornWrite) => {
                let _ = self.inner.append(name, &data[..self.plan.cut(data.len())]);
                Err(injected(IoFaultKind::TornWrite))
            }
            Some(kind) => Err(injected(kind)),
        }
    }

    fn replace(&self, name: &str, data: &[u8]) -> io::Result<()> {
        match self.charge()? {
            None => self.inner.replace(name, data),
            // DiskFull, RenameFail and the rest all leave the visible
            // file untouched: replace is all-or-nothing by contract.
            Some(kind) => Err(injected(kind)),
        }
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        match self.charge()? {
            None => self.inner.truncate(name, len),
            Some(kind) => Err(injected(kind)),
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match self.charge()? {
            None => self.inner.remove(name),
            Some(kind) => Err(injected(kind)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_check_value() {
        // The IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_and_scan_round_trip() {
        let mut bytes = frame_record(b'C', b"times go flat");
        bytes.extend_from_slice(&frame_record(b'B', b"1\n# t_end=5\n1.0\n"));
        let scan = scan_records(&bytes);
        assert_eq!(scan.stop, None);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0], (b'C', b"times go flat".to_vec()));
        assert_eq!(scan.records[1].0, b'B');
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let good = frame_record(b'C', b"config");
        let torn = frame_record(b'B', b"payload that gets cut");
        for cut in [1, 4, 7, 9, torn.len() - 1] {
            let mut bytes = good.clone();
            bytes.extend_from_slice(&torn[..cut]);
            let scan = scan_records(&bytes);
            assert_eq!(scan.stop, Some(ScanStop::TornTail), "cut={cut}");
            assert_eq!(scan.valid_len, good.len() as u64);
            assert_eq!(scan.records.len(), 1);
        }
    }

    #[test]
    fn scan_flags_corruption_not_torn_tail() {
        let good = frame_record(b'C', b"config");
        // Bit flip inside the second record's payload.
        let mut bytes = good.clone();
        let mut bad = frame_record(b'B', b"1\ndata");
        let n = bad.len();
        bad[n - 1] ^= 0x40;
        bytes.extend_from_slice(&bad);
        // A further valid record is untrusted once corruption is seen.
        bytes.extend_from_slice(&frame_record(b'B', b"2\nmore"));
        let scan = scan_records(&bytes);
        assert_eq!(scan.stop, Some(ScanStop::Corrupt));
        assert_eq!(scan.valid_len, good.len() as u64);
        assert_eq!(scan.records.len(), 1);

        // A zero-length record is corruption too (no tag byte).
        let mut bytes = good.clone();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&crc32(b"").to_le_bytes());
        let scan = scan_records(&bytes);
        assert_eq!(scan.stop, Some(ScanStop::Corrupt));
        assert_eq!(scan.valid_len, good.len() as u64);
    }

    fn exercise(storage: &dyn Storage) {
        assert_eq!(storage.read("a.log").unwrap(), None);
        assert_eq!(storage.append("a.log", b"one").unwrap(), 3);
        assert_eq!(storage.append("a.log", b"two").unwrap(), 6);
        assert_eq!(storage.read("a.log").unwrap().unwrap(), b"onetwo");
        storage.replace("a.snap", b"snap").unwrap();
        assert_eq!(storage.read("a.snap").unwrap().unwrap(), b"snap");
        storage.truncate("a.log", 3).unwrap();
        assert_eq!(storage.read("a.log").unwrap().unwrap(), b"one");
        let mut names = storage.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a.log".to_string(), "a.snap".to_string()]);
        storage.remove("a.snap").unwrap();
        assert_eq!(storage.read("a.snap").unwrap(), None);
        storage.remove("a.snap").unwrap(); // idempotent
        assert!(storage.read("../evil").is_err(), "path escape rejected");
    }

    #[test]
    fn mem_storage_contract() {
        exercise(&MemStorage::new());
    }

    #[test]
    fn fs_storage_contract() {
        let dir = std::env::temp_dir().join(format!("nhpp-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let storage = FsStorage::open(&dir).unwrap();
        exercise(&storage);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_persists_a_prefix_then_dies() {
        let storage = FaultStorage::new(IoFaultPlan::at(1, IoFaultKind::TornWrite));
        storage.append("a.log", b"12345678").unwrap(); // op 0: clean
        let err = storage.append("a.log", b"ABCDEFGH").unwrap_err(); // op 1: torn
        assert!(err.to_string().contains("TornWrite"));
        assert!(storage.crashed());
        // Dead afterwards.
        assert!(storage.read("a.log").is_err());
        // The survivor holds the clean append plus half the torn one.
        let survivor = storage.survivor();
        assert_eq!(survivor.read("a.log").unwrap().unwrap(), b"12345678ABCD");
    }

    #[test]
    fn disk_full_and_rename_faults_leave_old_contents() {
        for kind in [IoFaultKind::DiskFull, IoFaultKind::RenameFail] {
            let storage = FaultStorage::new(IoFaultPlan::at(1, kind));
            storage.replace("a.snap", b"old").unwrap();
            assert!(storage.replace("a.snap", b"new").is_err());
            assert_eq!(storage.survivor().read("a.snap").unwrap().unwrap(), b"old");
        }
    }

    #[test]
    fn short_read_fault_returns_a_prefix() {
        let storage = FaultStorage::new(IoFaultPlan::at(1, IoFaultKind::ShortRead));
        storage.append("a.log", b"12345678").unwrap();
        assert_eq!(storage.read("a.log").unwrap().unwrap(), b"1234");
        assert!(storage.crashed());
    }
}
