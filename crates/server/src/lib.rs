//! `nhpp-serve`: a long-running fitting service over the estimators in
//! `nhpp-vb`.
//!
//! Everything built below this crate is batch-oriented: one process,
//! one dataset, one fit, exit. The deployment the paper targets — a
//! test team feeding failure data day by day (System 17 is literally 64
//! daily observations) — wants a *resident* service instead: ingest
//! failure events as they arrive, keep fitted [`nhpp_vb::Vb2Posterior`]
//! mixtures warm, and answer interval/reliability queries cheaply. This
//! crate provides that service with zero new dependencies:
//!
//! * [`storage`] — the durable-storage boundary: a small trait over
//!   the filesystem with CRC-framed records, a real backend, and a
//!   deterministic fault-injecting backend (torn write, short read,
//!   disk full, failed rename) for the crash-recovery chaos harness;
//! * [`registry`] — named projects with append-only event ingestion,
//!   versioned data snapshots, and durability via checksummed
//!   append-only logs plus crash-consistent snapshots and log
//!   compaction, replayed (with torn-write recovery and
//!   corrupt-snapshot fallback) on startup;
//! * [`scheduler`] — a per-project fit cache with request coalescing:
//!   concurrent queries against a stale posterior trigger exactly one
//!   [`nhpp_vb::robust`] refit (deduplicated by data version), warm
//!   started from the previous fit's `ξ` fixed-point table, plus a
//!   flush tick that batch-refits every stale project through one
//!   [`nhpp_vb::fit_many_supervised_warm`] pool;
//! * [`routes`] — the HTTP endpoint surface (credible intervals, mean
//!   value bands, predictive counts, reliability, an SPC control-limit
//!   check on the newest inter-failure time), answered from the cached
//!   posterior without refitting;
//! * [`metrics`] — counters and latency histograms exposed in the
//!   Prometheus text format, including the fit/coalesce counters the
//!   load generator and CI smoke job assert on;
//! * [`http`] + [`server`] — a deliberately minimal HTTP/1.1 layer on
//!   `std::net::TcpListener`, with accept workers fanned out through
//!   `nhpp_numeric::parallel` (no async runtime; see `DESIGN.md` §12
//!   for the rationale).

pub mod http;
pub mod metrics;
pub mod monitor;
pub mod registry;
pub mod routes;
pub mod scheduler;
pub mod server;
pub mod storage;

pub use http::{client_request, client_request_full, client_request_with_backoff, Request, Response};
pub use metrics::Metrics;
pub use monitor::{Alert, ChartPoint, ChartSnapshot, Monitor, MonitorConfig, SchemeSelect};
pub use registry::{
    fsck, DataKind, DurabilityPolicy, FsckEntry, ProjectConfig, RecoveryStats, Registry,
    SnapshotStatus,
};
pub use scheduler::{CachedFit, FitCache, FitSettings};
pub use server::{AppState, Server, ServerConfig, ServerHandle};
pub use storage::{FaultStorage, FsStorage, IoFaultKind, IoFaultPlan, MemStorage, Storage};
