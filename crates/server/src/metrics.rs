//! Service observability: lock-free counters and a fixed-bucket request
//! latency histogram, rendered in the Prometheus text exposition format.
//!
//! Everything is a relaxed `AtomicU64` — the numbers are monitoring
//! signals, not synchronisation, and the scrape path must never contend
//! with the serving path. The histogram keeps latency in microseconds
//! internally (an integer, so it can live in an atomic) and exposes
//! millisecond bucket labels.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds of the latency buckets, in milliseconds. The last
/// bucket is implicit `+Inf`.
pub const LATENCY_BUCKETS_MS: [f64; 10] =
    [0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0];

/// All service counters. One instance lives in the shared
/// [`crate::AppState`] for the whole life of the process.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests answered with a 2xx status.
    pub requests_2xx: AtomicU64,
    /// Requests answered with a 4xx status.
    pub requests_4xx: AtomicU64,
    /// Requests answered with a 5xx status.
    pub requests_5xx: AtomicU64,
    /// Failure events accepted into project logs.
    pub events_ingested: AtomicU64,
    /// Supervised fits actually executed (cold or warm).
    pub fits_total: AtomicU64,
    /// Fits that were warm-started from a previous posterior.
    pub fits_warm: AtomicU64,
    /// Queries that piggybacked on an already in-flight fit of the same
    /// data version instead of starting their own.
    pub fits_coalesced: AtomicU64,
    /// Queries answered straight from the cached posterior.
    pub cache_hits: AtomicU64,
    /// Fits whose cascade surfaced an error.
    pub fit_errors: AtomicU64,
    /// Fits in which some attempt exhausted its solve budget.
    pub budget_exhaustions: AtomicU64,
    /// Fits whose result came from a fallback tier (VB1/Laplace).
    pub fallback_fits: AtomicU64,
    /// Inner fixed-point iterations spent across all executed fits.
    pub refit_inner_iterations: AtomicU64,
    /// Flush ticks that ran (idle ticks included).
    pub flush_ticks: AtomicU64,
    /// Requests shed by admission control (503 + `Retry-After`) because
    /// the work queue was full.
    pub requests_shed: AtomicU64,
    /// Cached posteriors dropped by the LRU memory bound.
    pub posteriors_evicted: AtomicU64,
    /// Queries answered with a calibration factor applied.
    pub calibrated_queries: AtomicU64,
    /// Calibrated queries refused with `400` (no dictionary loaded, or
    /// no entry for the project's regime).
    pub calibration_rejected: AtomicU64,
    /// Chart points scored by the monitor.
    pub monitor_points: AtomicU64,
    /// Chart points classified out of control (either side, any scheme).
    pub monitor_out_of_control: AtomicU64,
    /// Change-point alerts published.
    pub monitor_alerts: AtomicU64,
    /// Refits triggered by monitor alerts.
    pub monitor_refits: AtomicU64,
    /// Ingests whose chart scoring was deferred for lack of a cached
    /// posterior (scored on the next fit-bearing query).
    pub monitor_deferred: AtomicU64,
    /// Chart-journal writes that failed (state stays in memory; the
    /// points are rescored after the next recovery).
    pub monitor_persist_errors: AtomicU64,
    /// Long-poll waits answered with at least one alert.
    pub monitor_wait_delivered: AtomicU64,
    /// Long-poll waits that timed out empty.
    pub monitor_wait_timeouts: AtomicU64,
    /// Latency bucket counters (`LATENCY_BUCKETS_MS` + `+Inf`).
    pub latency_buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    /// Total observed latency in microseconds.
    pub latency_sum_us: AtomicU64,
    /// Number of observed requests.
    pub latency_count: AtomicU64,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records a finished request: status class + latency.
    pub fn observe_request(&self, status: u16, elapsed: std::time::Duration) {
        let class = match status {
            200..=299 => &self.requests_2xx,
            400..=499 => &self.requests_4xx,
            _ => &self.requests_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let ms = us as f64 / 1000.0;
        let bucket = LATENCY_BUCKETS_MS
            .iter()
            .position(|&ub| ms <= ub)
            .unwrap_or(LATENCY_BUCKETS_MS.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        self.render_with(None)
    }

    /// Renders the exposition including the registry's durability
    /// counters, when given.
    pub fn render_with(&self, recovery: Option<&crate::registry::RecoveryStats>) -> String {
        let mut out = String::with_capacity(2048);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP nhpp_serve_{name} {help}");
            let _ = writeln!(out, "# TYPE nhpp_serve_{name} counter");
            let _ = writeln!(out, "nhpp_serve_{name} {value}");
        };
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);

        let _ = writeln!(
            out,
            "# HELP nhpp_serve_requests_total Requests answered, by status class."
        );
        let _ = writeln!(out, "# TYPE nhpp_serve_requests_total counter");
        for (class, v) in [
            ("2xx", g(&self.requests_2xx)),
            ("4xx", g(&self.requests_4xx)),
            ("5xx", g(&self.requests_5xx)),
        ] {
            let _ = writeln!(out, "nhpp_serve_requests_total{{class=\"{class}\"}} {v}");
        }
        counter(
            &mut out,
            "events_ingested_total",
            "Failure events accepted into project logs.",
            g(&self.events_ingested),
        );
        counter(
            &mut out,
            "fits_total",
            "Supervised fits executed.",
            g(&self.fits_total),
        );
        counter(
            &mut out,
            "fits_warm_total",
            "Fits warm-started from a previous posterior.",
            g(&self.fits_warm),
        );
        counter(
            &mut out,
            "fits_coalesced_total",
            "Queries that joined an in-flight fit instead of starting one.",
            g(&self.fits_coalesced),
        );
        counter(
            &mut out,
            "fit_cache_hits_total",
            "Queries answered from the cached posterior.",
            g(&self.cache_hits),
        );
        counter(
            &mut out,
            "fit_errors_total",
            "Fits whose cascade surfaced an error.",
            g(&self.fit_errors),
        );
        counter(
            &mut out,
            "budget_exhaustions_total",
            "Fits in which an attempt exhausted its solve budget.",
            g(&self.budget_exhaustions),
        );
        counter(
            &mut out,
            "fallback_fits_total",
            "Fits served by a fallback tier (VB1/Laplace).",
            g(&self.fallback_fits),
        );
        counter(
            &mut out,
            "refit_inner_iterations_total",
            "Inner fixed-point iterations across all executed fits.",
            g(&self.refit_inner_iterations),
        );
        counter(
            &mut out,
            "flush_ticks_total",
            "Scheduler flush ticks.",
            g(&self.flush_ticks),
        );
        counter(
            &mut out,
            "requests_shed_total",
            "Requests shed by admission control (503 + Retry-After).",
            g(&self.requests_shed),
        );
        counter(
            &mut out,
            "posteriors_evicted_total",
            "Cached posteriors dropped by the LRU memory bound.",
            g(&self.posteriors_evicted),
        );
        counter(
            &mut out,
            "calibrated_queries_total",
            "Queries answered with a calibration factor applied.",
            g(&self.calibrated_queries),
        );
        counter(
            &mut out,
            "calibration_rejected_total",
            "Calibrated queries refused (no dictionary or no regime entry).",
            g(&self.calibration_rejected),
        );
        counter(
            &mut out,
            "monitor_points_total",
            "Chart points scored by the monitor.",
            g(&self.monitor_points),
        );
        counter(
            &mut out,
            "monitor_out_of_control_total",
            "Chart points outside the control limits.",
            g(&self.monitor_out_of_control),
        );
        counter(
            &mut out,
            "monitor_alerts_total",
            "Change-point alerts published by the monitor.",
            g(&self.monitor_alerts),
        );
        counter(
            &mut out,
            "monitor_refits_total",
            "Refits triggered by monitor alerts.",
            g(&self.monitor_refits),
        );
        counter(
            &mut out,
            "monitor_deferred_total",
            "Ingests whose chart scoring awaited a first fitted posterior.",
            g(&self.monitor_deferred),
        );
        counter(
            &mut out,
            "monitor_persist_errors_total",
            "Chart-journal writes that failed.",
            g(&self.monitor_persist_errors),
        );
        counter(
            &mut out,
            "monitor_wait_delivered_total",
            "Long-poll waits answered with at least one alert.",
            g(&self.monitor_wait_delivered),
        );
        counter(
            &mut out,
            "monitor_wait_timeouts_total",
            "Long-poll waits that timed out empty.",
            g(&self.monitor_wait_timeouts),
        );
        if let Some(recovery) = recovery {
            for (name, help, value) in [
                (
                    "recovery_torn_tails_total",
                    "Torn log tails truncated during replay.",
                    &recovery.torn_truncated,
                ),
                (
                    "recovery_checksum_failures_total",
                    "Log suffixes dropped for checksum failures.",
                    &recovery.checksum_failures,
                ),
                (
                    "recovery_snapshots_loaded_total",
                    "Snapshots that seeded a project replay.",
                    &recovery.snapshots_loaded,
                ),
                (
                    "recovery_snapshot_fallbacks_total",
                    "Corrupt snapshots that forced pure log replay.",
                    &recovery.snapshot_fallbacks,
                ),
                (
                    "snapshots_written_total",
                    "Snapshots written by maintenance, compaction or shutdown.",
                    &recovery.snapshots_written,
                ),
                (
                    "compactions_total",
                    "Log compactions performed.",
                    &recovery.compactions_run,
                ),
                (
                    "recovery_duplicates_skipped_total",
                    "Replay records already covered by a snapshot.",
                    &recovery.duplicates_skipped,
                ),
                (
                    "maintenance_failures_total",
                    "Failed snapshot/compaction attempts.",
                    &recovery.maintenance_failures,
                ),
            ] {
                counter(&mut out, name, help, g(value));
            }
        }

        let _ = writeln!(
            out,
            "# HELP nhpp_serve_request_duration_ms Request latency histogram."
        );
        let _ = writeln!(out, "# TYPE nhpp_serve_request_duration_ms histogram");
        let mut cumulative = 0u64;
        for (i, ub) in LATENCY_BUCKETS_MS.iter().enumerate() {
            cumulative += g(&self.latency_buckets[i]);
            let _ = writeln!(
                out,
                "nhpp_serve_request_duration_ms_bucket{{le=\"{ub}\"}} {cumulative}"
            );
        }
        cumulative += g(&self.latency_buckets[LATENCY_BUCKETS_MS.len()]);
        let _ = writeln!(
            out,
            "nhpp_serve_request_duration_ms_bucket{{le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "nhpp_serve_request_duration_ms_sum {}",
            g(&self.latency_sum_us) as f64 / 1000.0
        );
        let _ = writeln!(
            out,
            "nhpp_serve_request_duration_ms_count {}",
            g(&self.latency_count)
        );
        out
    }
}

/// Extracts the value of a plain (unlabelled) counter from a rendered
/// exposition — the shared scrape helper for the CLI client, the load
/// generator and the smoke tests.
pub fn scrape_counter(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn request_observation_fills_class_and_histogram() {
        let m = Metrics::new();
        m.observe_request(200, Duration::from_micros(300));
        m.observe_request(404, Duration::from_millis(7));
        m.observe_request(503, Duration::from_secs(10));
        assert_eq!(m.requests_2xx.load(Ordering::Relaxed), 1);
        assert_eq!(m.requests_4xx.load(Ordering::Relaxed), 1);
        assert_eq!(m.requests_5xx.load(Ordering::Relaxed), 1);
        assert_eq!(m.latency_count.load(Ordering::Relaxed), 3);
        // 0.3 ms lands in the ≤0.5 bucket, 7 ms in ≤10, 10 s in +Inf.
        assert_eq!(m.latency_buckets[1].load(Ordering::Relaxed), 1);
        assert_eq!(m.latency_buckets[4].load(Ordering::Relaxed), 1);
        assert_eq!(
            m.latency_buckets[LATENCY_BUCKETS_MS.len()].load(Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn render_with_exposes_recovery_counters() {
        let m = Metrics::new();
        m.requests_shed.fetch_add(4, Ordering::Relaxed);
        m.posteriors_evicted.fetch_add(2, Ordering::Relaxed);
        let stats = crate::registry::RecoveryStats::default();
        stats.torn_truncated.fetch_add(3, Ordering::Relaxed);
        stats.compactions_run.fetch_add(1, Ordering::Relaxed);
        let text = m.render_with(Some(&stats));
        assert_eq!(
            scrape_counter(&text, "nhpp_serve_requests_shed_total"),
            Some(4)
        );
        assert_eq!(
            scrape_counter(&text, "nhpp_serve_posteriors_evicted_total"),
            Some(2)
        );
        assert_eq!(
            scrape_counter(&text, "nhpp_serve_recovery_torn_tails_total"),
            Some(3)
        );
        assert_eq!(scrape_counter(&text, "nhpp_serve_compactions_total"), Some(1));
        // Without recovery stats the durability counters are absent.
        assert!(!m.render().contains("recovery_torn_tails"));
    }

    #[test]
    fn render_and_scrape_round_trip() {
        let m = Metrics::new();
        m.fits_total.fetch_add(3, Ordering::Relaxed);
        m.fits_coalesced.fetch_add(63, Ordering::Relaxed);
        m.observe_request(200, Duration::from_millis(1));
        let text = m.render();
        assert_eq!(scrape_counter(&text, "nhpp_serve_fits_total"), Some(3));
        assert_eq!(
            scrape_counter(&text, "nhpp_serve_fits_coalesced_total"),
            Some(63)
        );
        assert!(text.contains("nhpp_serve_request_duration_ms_bucket{le=\"+Inf\"} 1"));
        // Histogram buckets are cumulative.
        let le_1000: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("nhpp_serve_request_duration_ms_bucket"))
            .collect();
        assert_eq!(le_1000.len(), LATENCY_BUCKETS_MS.len() + 1);
    }
}
