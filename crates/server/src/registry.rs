//! The project registry: named streaming datasets with append-only
//! ingestion and a durable, replayable on-disk log.
//!
//! # Data model
//!
//! A *project* is one monitored software system: a model family, a
//! prior, and a failure dataset that only ever grows. Ingestion appends
//! *batches* — the same CSV text the `nhpp_data::io` readers accept —
//! and each accepted batch bumps the project's *data version*, the
//! monotone counter the fit scheduler deduplicates refits by.
//!
//! # Durability
//!
//! Each project owns one append-only log file `<dir>/<id>.log` holding
//! length-prefixed records (`u32` little-endian byte length, then the
//! payload). The first record is the project configuration (`C`); every
//! accepted batch appends its raw CSV payload verbatim (`B`). Startup
//! replays every log through exactly the ingestion code path, so a
//! recovered registry is state-identical to the one that wrote the log.
//! A torn final record — the crash window of an append — is detected by
//! the length prefix and truncated away; everything before it survives.

use crate::scheduler::FitSlot;
use nhpp_data::io::{read_failure_times, read_grouped};
use nhpp_data::{FailureTimeData, GroupedData, ObservedData};
use nhpp_dist::Gamma;
use nhpp_models::prior::NhppPrior;
use nhpp_models::ModelSpec;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

/// Whether a project ingests failure times or grouped counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// Exact failure times plus a censoring end (`D_T`).
    Times,
    /// Interval boundaries plus per-interval counts (`D_G`).
    Grouped,
}

impl DataKind {
    /// Stable keyword used in the API and the log.
    pub fn as_str(&self) -> &'static str {
        match self {
            DataKind::Times => "times",
            DataKind::Grouped => "grouped",
        }
    }

    /// Parses the keyword.
    pub fn parse(text: &str) -> Result<DataKind, String> {
        match text {
            "times" => Ok(DataKind::Times),
            "grouped" => Ok(DataKind::Grouped),
            other => Err(format!("unknown data kind '{other}' (times|grouped)")),
        }
    }
}

/// Immutable configuration a project is created with.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectConfig {
    /// Ingestion shape.
    pub kind: DataKind,
    /// Model family.
    pub spec: ModelSpec,
    /// Prior over `(ω, β)`.
    pub prior: NhppPrior,
    /// Canonical model keyword (`go`, `dss`, `gamma:<a0>`).
    pub model_label: String,
    /// Canonical prior keyword.
    pub prior_label: String,
}

impl ProjectConfig {
    /// Builds a configuration from the API keywords.
    ///
    /// # Errors
    ///
    /// A description of the offending keyword.
    pub fn from_labels(kind: &str, model: &str, prior: &str) -> Result<ProjectConfig, String> {
        let kind = DataKind::parse(kind)?;
        let spec = parse_model(model)?;
        let prior_value = parse_prior(prior)?;
        Ok(ProjectConfig {
            kind,
            spec,
            prior: prior_value,
            model_label: model.to_string(),
            prior_label: prior.to_string(),
        })
    }
}

/// Parses a model keyword: `go`, `dss` or `gamma:<alpha0>`.
pub fn parse_model(text: &str) -> Result<ModelSpec, String> {
    match text {
        "go" => Ok(ModelSpec::goel_okumoto()),
        "dss" => Ok(ModelSpec::delayed_s_shaped()),
        other => match other.strip_prefix("gamma:") {
            Some(raw) => {
                let alpha0: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad gamma shape '{raw}'"))?;
                ModelSpec::gamma_type(alpha0).map_err(|e| e.to_string())
            }
            None => Err(format!("unknown model '{other}' (go|dss|gamma:<a0>)")),
        },
    }
}

/// Parses a prior keyword: `paper-info-times`, `paper-info-grouped`,
/// `flat`, or `wmean,wsd,bmean,bsd`.
pub fn parse_prior(text: &str) -> Result<NhppPrior, String> {
    match text {
        "paper-info-times" => Ok(NhppPrior::paper_info_times()),
        "paper-info-grouped" => Ok(NhppPrior::paper_info_grouped()),
        "flat" => Ok(NhppPrior::flat()),
        other => {
            let parts: Vec<&str> = other.split(',').collect();
            if parts.len() != 4 {
                return Err(format!(
                    "unknown prior '{other}' \
                     (paper-info-times|paper-info-grouped|flat|wmean,wsd,bmean,bsd)"
                ));
            }
            let mut values = [0.0f64; 4];
            for (slot, raw) in values.iter_mut().zip(&parts) {
                *slot = raw
                    .parse()
                    .map_err(|_| format!("bad prior component '{raw}'"))?;
            }
            let omega = Gamma::from_mean_sd(values[0], values[1]).map_err(|e| e.to_string())?;
            let beta = Gamma::from_mean_sd(values[2], values[3]).map_err(|e| e.to_string())?;
            Ok(NhppPrior::informative(omega, beta))
        }
    }
}

/// Errors surfaced by registry operations, pre-classified for the HTTP
/// layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Bad project id or keyword (HTTP 400).
    Invalid(String),
    /// A project exists with a different configuration (HTTP 409).
    Conflict(String),
    /// A batch violated the append-only data invariants (HTTP 400).
    Data(String),
    /// The durable log could not be written or read (HTTP 500).
    Io(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Invalid(m)
            | RegistryError::Conflict(m)
            | RegistryError::Data(m)
            | RegistryError::Io(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The mutable streaming state of one project.
#[derive(Debug)]
struct ProjectState {
    config: ProjectConfig,
    /// Observed failure times (`Times` projects).
    times: Vec<f64>,
    /// Observation end (`Times` projects; 0 before the first batch).
    t_end: f64,
    /// Interval boundaries (`Grouped` projects).
    boundaries: Vec<f64>,
    /// Interval counts (`Grouped` projects).
    counts: Vec<u64>,
    /// Monotone data version: the number of accepted batches.
    version: u64,
    /// Total failure events observed.
    event_count: u64,
    /// Open append handle of the durable log (`None` = in-memory only).
    log: Option<File>,
}

/// A point-in-time description of a project, cheap to serialise.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectSummary {
    /// Project id.
    pub id: String,
    /// Ingestion shape keyword.
    pub kind: &'static str,
    /// Model keyword.
    pub model: String,
    /// Prior keyword.
    pub prior: String,
    /// Data version (accepted batches).
    pub version: u64,
    /// Total failure events.
    pub event_count: u64,
    /// Observation end (times: seconds; grouped: last boundary).
    pub observation_end: f64,
}

/// One registered project. The fit slot and its condition variable live
/// here so the scheduler can coalesce per project without a global lock.
#[derive(Debug)]
pub struct Project {
    id: String,
    state: Mutex<ProjectState>,
    /// Cached fit + in-flight marker (owned by [`crate::scheduler`]).
    pub(crate) fit: Mutex<FitSlot>,
    /// Signalled when an in-flight fit completes.
    pub(crate) fit_ready: Condvar,
}

impl Project {
    fn new(id: String, config: ProjectConfig, log: Option<File>) -> Project {
        Project {
            id,
            state: Mutex::new(ProjectState {
                config,
                times: Vec::new(),
                t_end: 0.0,
                boundaries: Vec::new(),
                counts: Vec::new(),
                version: 0,
                event_count: 0,
                log,
            }),
            fit: Mutex::new(FitSlot::default()),
            fit_ready: Condvar::new(),
        }
    }

    /// The project id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Ingests one batch in the `nhpp_data::io` CSV format, appending
    /// it to the durable log first. Returns the number of new events.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Data`] when the batch violates the append-only
    /// invariants, [`RegistryError::Io`] when the log write fails (the
    /// in-memory state is left untouched in both cases).
    pub fn ingest(&self, batch_text: &str) -> Result<u64, RegistryError> {
        let mut state = self.state.lock().expect("project state poisoned");
        let staged = stage_batch(&state, batch_text)?;
        if let Some(log) = state.log.as_mut() {
            append_record(log, b'B', batch_text.as_bytes())
                .map_err(|e| RegistryError::Io(format!("log append failed: {e}")))?;
        }
        let added = staged.added;
        match staged.data {
            StagedData::Times { times, t_end } => {
                state.times = times;
                state.t_end = t_end;
            }
            StagedData::Grouped { boundaries, counts } => {
                state.boundaries = boundaries;
                state.counts = counts;
            }
        }
        state.version += 1;
        state.event_count += added;
        Ok(added)
    }

    /// Consistent snapshot for fitting: `(version, data, spec, prior)`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Data`] before any batch has been accepted (there
    /// is nothing to fit).
    pub fn snapshot(&self) -> Result<(u64, ObservedData, ModelSpec, NhppPrior), RegistryError> {
        let state = self.state.lock().expect("project state poisoned");
        if state.version == 0 {
            return Err(RegistryError::Data(format!(
                "project '{}' has no ingested data yet",
                self.id
            )));
        }
        let data = match state.config.kind {
            DataKind::Times => FailureTimeData::new(state.times.clone(), state.t_end)
                .map(ObservedData::from)
                .map_err(|e| RegistryError::Data(e.to_string()))?,
            DataKind::Grouped => GroupedData::new(state.boundaries.clone(), state.counts.clone())
                .map(ObservedData::from)
                .map_err(|e| RegistryError::Data(e.to_string()))?,
        };
        Ok((state.version, data, state.config.spec, state.config.prior))
    }

    /// The two newest failure times `(t_prev, t_last)` for the SPC
    /// check, when the project has at least two (`Times` only).
    pub fn newest_gap(&self) -> Option<(f64, f64)> {
        let state = self.state.lock().expect("project state poisoned");
        if state.config.kind != DataKind::Times || state.times.len() < 2 {
            return None;
        }
        let n = state.times.len();
        Some((state.times[n - 2], state.times[n - 1]))
    }

    /// The current data version.
    pub fn version(&self) -> u64 {
        self.state.lock().expect("project state poisoned").version
    }

    /// A serialisable description of the current state.
    pub fn summary(&self) -> ProjectSummary {
        let state = self.state.lock().expect("project state poisoned");
        let observation_end = match state.config.kind {
            DataKind::Times => state.t_end,
            DataKind::Grouped => state.boundaries.last().copied().unwrap_or(0.0),
        };
        ProjectSummary {
            id: self.id.clone(),
            kind: state.config.kind.as_str(),
            model: state.config.model_label.clone(),
            prior: state.config.prior_label.clone(),
            version: state.version,
            event_count: state.event_count,
            observation_end,
        }
    }

    /// The project configuration.
    pub fn config(&self) -> ProjectConfig {
        self.state
            .lock()
            .expect("project state poisoned")
            .config
            .clone()
    }
}

/// A validated batch, not yet committed.
struct Staged {
    data: StagedData,
    added: u64,
}

enum StagedData {
    Times { times: Vec<f64>, t_end: f64 },
    Grouped { boundaries: Vec<f64>, counts: Vec<u64> },
}

/// Validates a batch against the append-only invariants and produces
/// the merged dataset without mutating anything.
fn stage_batch(state: &ProjectState, batch_text: &str) -> Result<Staged, RegistryError> {
    match state.config.kind {
        DataKind::Times => {
            let batch = read_failure_times(batch_text.as_bytes())
                .map_err(|e| RegistryError::Data(format!("bad times batch: {e}")))?;
            if state.version > 0 && batch.observation_end() < state.t_end {
                return Err(RegistryError::Data(format!(
                    "batch t_end {} precedes current observation end {}",
                    batch.observation_end(),
                    state.t_end
                )));
            }
            if let (Some(&last), Some(&first)) = (state.times.last(), batch.times().first()) {
                if first < last {
                    return Err(RegistryError::Data(format!(
                        "batch starts at {first} before the newest recorded failure {last}"
                    )));
                }
            }
            let mut times = state.times.clone();
            times.extend_from_slice(batch.times());
            let t_end = batch.observation_end();
            // Revalidate the merged dataset through the canonical
            // constructor so a registry invariant can never drift from
            // the `FailureTimeData` one.
            FailureTimeData::new(times.clone(), t_end)
                .map_err(|e| RegistryError::Data(e.to_string()))?;
            Ok(Staged {
                added: batch.len() as u64,
                data: StagedData::Times { times, t_end },
            })
        }
        DataKind::Grouped => {
            let batch = read_grouped(batch_text.as_bytes())
                .map_err(|e| RegistryError::Data(format!("bad grouped batch: {e}")))?;
            if let (Some(&last), Some(&first)) =
                (state.boundaries.last(), batch.boundaries().first())
            {
                if first <= last {
                    return Err(RegistryError::Data(format!(
                        "batch boundary {first} does not extend the last boundary {last}"
                    )));
                }
            }
            let mut boundaries = state.boundaries.clone();
            boundaries.extend_from_slice(batch.boundaries());
            let mut counts = state.counts.clone();
            counts.extend_from_slice(batch.counts());
            GroupedData::new(boundaries.clone(), counts.clone())
                .map_err(|e| RegistryError::Data(e.to_string()))?;
            Ok(Staged {
                added: batch.total_count(),
                data: StagedData::Grouped { boundaries, counts },
            })
        }
    }
}

/// Outcome of [`Registry::create`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateOutcome {
    /// The project was created.
    Created,
    /// A project with the identical configuration already exists
    /// (creation is idempotent).
    AlreadyExists,
}

/// The registry: all projects, plus the durable-log directory.
#[derive(Debug)]
pub struct Registry {
    dir: Option<PathBuf>,
    projects: Mutex<BTreeMap<String, Arc<Project>>>,
}

impl Registry {
    /// Opens a registry. With a directory, every `*.log` in it is
    /// replayed (creating the directory if absent); with `None` the
    /// registry is in-memory only (tests, benchmarks).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory cannot be created or a
    /// log cannot be read; [`RegistryError::Data`] when a fully-written
    /// log record fails to re-apply (true corruption, not a torn tail).
    pub fn open(dir: Option<&Path>) -> Result<Registry, RegistryError> {
        let registry = Registry {
            dir: dir.map(Path::to_path_buf),
            projects: Mutex::new(BTreeMap::new()),
        };
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| RegistryError::Io(format!("cannot create {}: {e}", dir.display())))?;
            let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| RegistryError::Io(e.to_string()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "log"))
                .collect();
            entries.sort();
            for path in entries {
                registry.replay_log(&path)?;
            }
        }
        Ok(registry)
    }

    /// Creates a project (idempotent when the configuration matches).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Invalid`] for a bad id,
    /// [`RegistryError::Conflict`] when the id exists with a different
    /// configuration, [`RegistryError::Io`] when the log cannot be
    /// started.
    pub fn create(&self, id: &str, config: ProjectConfig) -> Result<CreateOutcome, RegistryError> {
        validate_id(id)?;
        let mut projects = self.projects.lock().expect("registry poisoned");
        if let Some(existing) = projects.get(id) {
            return if existing.config() == config {
                Ok(CreateOutcome::AlreadyExists)
            } else {
                Err(RegistryError::Conflict(format!(
                    "project '{id}' already exists with a different configuration"
                )))
            };
        }
        let log = match &self.dir {
            Some(dir) => {
                let mut file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join(format!("{id}.log")))
                    .map_err(|e| RegistryError::Io(format!("cannot open log: {e}")))?;
                let record = format!(
                    "{} {} {}",
                    config.kind.as_str(),
                    config.model_label,
                    config.prior_label
                );
                append_record(&mut file, b'C', record.as_bytes())
                    .map_err(|e| RegistryError::Io(format!("log append failed: {e}")))?;
                Some(file)
            }
            None => None,
        };
        projects.insert(
            id.to_string(),
            Arc::new(Project::new(id.to_string(), config, log)),
        );
        Ok(CreateOutcome::Created)
    }

    /// Looks up a project.
    pub fn get(&self, id: &str) -> Option<Arc<Project>> {
        self.projects
            .lock()
            .expect("registry poisoned")
            .get(id)
            .cloned()
    }

    /// All projects, in id order.
    pub fn all(&self) -> Vec<Arc<Project>> {
        self.projects
            .lock()
            .expect("registry poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Replays one project log, truncating a torn final record.
    fn replay_log(&self, path: &Path) -> Result<(), RegistryError> {
        let id = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| RegistryError::Io(format!("unreadable log name {}", path.display())))?
            .to_string();
        validate_id(&id)?;
        let mut file = File::open(path).map_err(|e| RegistryError::Io(e.to_string()))?;
        let mut records = Vec::new();
        let mut good_offset = 0u64;
        loop {
            let mut len_buf = [0u8; 4];
            match read_exact_or_eof(&mut file, &mut len_buf) {
                ReadOutcome::Full => {}
                ReadOutcome::Eof => break,
                ReadOutcome::Partial | ReadOutcome::Err => {
                    truncate_to(path, good_offset)?;
                    break;
                }
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            let mut payload = vec![0u8; len];
            match read_exact_or_eof(&mut file, &mut payload) {
                ReadOutcome::Full => {}
                _ => {
                    // Torn write: the length prefix landed but the
                    // payload did not. Drop the tail.
                    truncate_to(path, good_offset)?;
                    break;
                }
            }
            good_offset += 4 + len as u64;
            records.push(payload);
        }

        let mut project: Option<Arc<Project>> = None;
        for record in records {
            let (tag, body) = record
                .split_first()
                .ok_or_else(|| RegistryError::Data(format!("empty record in {}", path.display())))?;
            let text = std::str::from_utf8(body).map_err(|_| {
                RegistryError::Data(format!("non-UTF-8 record in {}", path.display()))
            })?;
            match tag {
                b'C' => {
                    let mut parts = text.split_whitespace();
                    let (kind, model, prior) = match (parts.next(), parts.next(), parts.next()) {
                        (Some(k), Some(m), Some(p)) => (k, m, p),
                        _ => {
                            return Err(RegistryError::Data(format!(
                                "malformed config record in {}",
                                path.display()
                            )))
                        }
                    };
                    let config = ProjectConfig::from_labels(kind, model, prior)
                        .map_err(RegistryError::Data)?;
                    // Reattach the append handle so post-replay batches
                    // keep extending the same log.
                    let log = OpenOptions::new()
                        .append(true)
                        .open(path)
                        .map_err(|e| RegistryError::Io(e.to_string()))?;
                    let p = Arc::new(Project::new(id.clone(), config, Some(log)));
                    self.projects
                        .lock()
                        .expect("registry poisoned")
                        .insert(id.clone(), p.clone());
                    project = Some(p);
                }
                b'B' => {
                    let project = project.as_ref().ok_or_else(|| {
                        RegistryError::Data(format!(
                            "batch before config record in {}",
                            path.display()
                        ))
                    })?;
                    // Replay must not re-append to the log: bypass
                    // `ingest` by staging against the current state and
                    // committing directly.
                    let mut state = project.state.lock().expect("project state poisoned");
                    let staged = stage_batch(&state, text)?;
                    match staged.data {
                        StagedData::Times { times, t_end } => {
                            state.times = times;
                            state.t_end = t_end;
                        }
                        StagedData::Grouped { boundaries, counts } => {
                            state.boundaries = boundaries;
                            state.counts = counts;
                        }
                    }
                    state.version += 1;
                    state.event_count += staged.added;
                }
                other => {
                    return Err(RegistryError::Data(format!(
                        "unknown record tag {other} in {}",
                        path.display()
                    )))
                }
            }
        }
        Ok(())
    }
}

/// Project ids are path- and URL-safe by construction.
fn validate_id(id: &str) -> Result<(), RegistryError> {
    let ok = !id.is_empty()
        && id.len() <= 64
        && !id.starts_with('.')
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(RegistryError::Invalid(format!(
            "invalid project id '{id}' (1-64 chars of [A-Za-z0-9._-], no leading dot)"
        )))
    }
}

/// Appends one length-prefixed record and forces it to stable storage.
fn append_record(file: &mut File, tag: u8, payload: &[u8]) -> std::io::Result<()> {
    let len = (payload.len() + 1) as u32;
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(payload);
    file.write_all(&buf)?;
    file.sync_data()
}

enum ReadOutcome {
    Full,
    Eof,
    Partial,
    Err,
}

/// `read_exact` variant distinguishing clean EOF (no bytes) from a torn
/// tail (some bytes, then EOF).
fn read_exact_or_eof(file: &mut File, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Err,
        }
    }
    ReadOutcome::Full
}

fn truncate_to(path: &Path, offset: u64) -> Result<(), RegistryError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| RegistryError::Io(e.to_string()))?;
    file.set_len(offset)
        .map_err(|e| RegistryError::Io(e.to_string()))?;
    file.sync_data()
        .map_err(|e| RegistryError::Io(e.to_string()))?;
    // Position sanity for any subsequent append handle: append mode
    // seeks to the (now truncated) end on each write.
    let _ = (&file).seek(SeekFrom::End(0));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nhpp-serve-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn times_config() -> ProjectConfig {
        ProjectConfig::from_labels("times", "go", "paper-info-times").unwrap()
    }

    fn batch(times: &[f64], t_end: f64) -> String {
        let mut text = format!("# t_end={t_end}\n");
        for t in times {
            text.push_str(&format!("{t}\n"));
        }
        text
    }

    #[test]
    fn create_is_idempotent_and_conflicts_on_mismatch() {
        let registry = Registry::open(None).unwrap();
        assert_eq!(
            registry.create("p1", times_config()).unwrap(),
            CreateOutcome::Created
        );
        assert_eq!(
            registry.create("p1", times_config()).unwrap(),
            CreateOutcome::AlreadyExists
        );
        let other = ProjectConfig::from_labels("times", "dss", "paper-info-times").unwrap();
        assert!(matches!(
            registry.create("p1", other),
            Err(RegistryError::Conflict(_))
        ));
        assert!(matches!(
            registry.create("../evil", times_config()),
            Err(RegistryError::Invalid(_))
        ));
    }

    #[test]
    fn ingestion_is_append_only_and_versioned() {
        let registry = Registry::open(None).unwrap();
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        assert!(p.snapshot().is_err(), "no data yet");

        assert_eq!(p.ingest(&batch(&[1.0, 2.0], 3.0)).unwrap(), 2);
        assert_eq!(p.ingest(&batch(&[4.5], 5.0)).unwrap(), 1);
        // A batch may advance the censoring end without new failures.
        assert_eq!(p.ingest(&batch(&[], 6.0)).unwrap(), 0);
        assert_eq!(p.version(), 3);
        let (version, data, _, _) = p.snapshot().unwrap();
        assert_eq!(version, 3);
        assert_eq!(data.total_count(), 3);
        assert_eq!(data.observation_end(), 6.0);

        // Rejections leave state untouched.
        assert!(p.ingest(&batch(&[0.5], 7.0)).is_err(), "out of order");
        assert!(p.ingest(&batch(&[6.5], 5.0)).is_err(), "t_end went back");
        assert_eq!(p.version(), 3);
    }

    #[test]
    fn grouped_ingestion_extends_boundaries() {
        let registry = Registry::open(None).unwrap();
        let config = ProjectConfig::from_labels("grouped", "go", "paper-info-grouped").unwrap();
        registry.create("g1", config).unwrap();
        let p = registry.get("g1").unwrap();
        assert_eq!(p.ingest("1,3\n2,1\n").unwrap(), 4);
        assert_eq!(p.ingest("3,0\n4,2\n").unwrap(), 2);
        assert!(p.ingest("4,1\n").is_err(), "non-extending boundary");
        let (version, data, _, _) = p.snapshot().unwrap();
        assert_eq!(version, 2);
        assert_eq!(data.total_count(), 6);
    }

    #[test]
    fn persistence_round_trip_restores_identical_state() {
        let dir = temp_dir("roundtrip");
        let summary_before;
        {
            let registry = Registry::open(Some(&dir)).unwrap();
            registry.create("p1", times_config()).unwrap();
            let p = registry.get("p1").unwrap();
            for k in 0..10 {
                let t = (k + 1) as f64 * 10.0;
                p.ingest(&batch(&[t], t + 5.0)).unwrap();
            }
            summary_before = p.summary();
        }
        // "Restart": a fresh registry replays the log.
        let registry = Registry::open(Some(&dir)).unwrap();
        let p = registry.get("p1").unwrap();
        assert_eq!(p.summary(), summary_before);
        let (version, data, _, _) = p.snapshot().unwrap();
        assert_eq!(version, 10);
        assert_eq!(data.total_count(), 10);
        assert_eq!(data.observation_end(), 105.0);
        // And the recovered registry keeps accepting appends.
        p.ingest(&batch(&[110.0], 120.0)).unwrap();
        assert_eq!(p.version(), 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_is_truncated_cleanly() {
        let dir = temp_dir("torn");
        {
            let registry = Registry::open(Some(&dir)).unwrap();
            registry.create("p1", times_config()).unwrap();
            let p = registry.get("p1").unwrap();
            p.ingest(&batch(&[1.0, 2.0], 3.0)).unwrap();
            p.ingest(&batch(&[4.0], 5.0)).unwrap();
        }
        // Simulate a crash mid-append: a record whose payload is cut
        // short of its length prefix.
        let log_path = dir.join("p1.log");
        {
            let mut file = OpenOptions::new().append(true).open(&log_path).unwrap();
            let torn = b"B# t_end=9\n6.0\n";
            file.write_all(&((torn.len() + 20) as u32).to_le_bytes())
                .unwrap();
            file.write_all(torn).unwrap();
        }
        let len_with_torn = std::fs::metadata(&log_path).unwrap().len();

        let registry = Registry::open(Some(&dir)).unwrap();
        let p = registry.get("p1").unwrap();
        // The torn record is gone; the two complete batches survive.
        assert_eq!(p.version(), 2);
        let (_, data, _, _) = p.snapshot().unwrap();
        assert_eq!(data.total_count(), 3);
        assert!(
            std::fs::metadata(&log_path).unwrap().len() < len_with_torn,
            "torn tail was truncated away"
        );
        // The next append lands after the truncation point and a third
        // replay sees it.
        p.ingest(&batch(&[6.0], 7.0)).unwrap();
        let registry = Registry::open(Some(&dir)).unwrap();
        assert_eq!(registry.get("p1").unwrap().version(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_length_prefix_is_truncated_cleanly() {
        let dir = temp_dir("torn-prefix");
        {
            let registry = Registry::open(Some(&dir)).unwrap();
            registry.create("p1", times_config()).unwrap();
            registry
                .get("p1")
                .unwrap()
                .ingest(&batch(&[1.0], 2.0))
                .unwrap();
        }
        let log_path = dir.join("p1.log");
        {
            let mut file = OpenOptions::new().append(true).open(&log_path).unwrap();
            // Two bytes of a four-byte length prefix.
            file.write_all(&[0x10, 0x00]).unwrap();
        }
        let registry = Registry::open(Some(&dir)).unwrap();
        assert_eq!(registry.get("p1").unwrap().version(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_helpers_reject_garbage() {
        assert!(parse_model("go").is_ok());
        assert!(parse_model("gamma:2.5").is_ok());
        assert!(parse_model("gamma:-1").is_err());
        assert!(parse_model("weibull").is_err());
        assert!(parse_prior("flat").is_ok());
        assert!(parse_prior("50,15.8,1e-5,3.2e-6").is_ok());
        assert!(parse_prior("1,2,3").is_err());
        assert!(parse_prior("a,b,c,d").is_err());
        assert!(DataKind::parse("times").is_ok());
        assert!(DataKind::parse("stream").is_err());
    }
}
