//! The project registry: named streaming datasets with append-only
//! ingestion and a durable, replayable, checksummed on-disk log.
//!
//! # Data model
//!
//! A *project* is one monitored software system: a model family, a
//! prior, and a failure dataset that only ever grows. Ingestion appends
//! *batches* — the same CSV text the `nhpp_data::io` readers accept —
//! and each accepted batch bumps the project's *data version*, the
//! monotone counter the fit scheduler deduplicates refits by.
//!
//! # Durability
//!
//! Each project owns one append-only log `<id>.log` of CRC-framed
//! records (see [`crate::storage`]): a config record (`C`, body
//! `kind model prior`) followed by batch records (`B`, body
//! `<seq>\n<csv>` where `seq` is the data version the batch produces).
//! Periodically — every [`DurabilityPolicy::snapshot_every`] versions —
//! the full project state is atomically written to `<id>.snap` as one
//! framed `S` record; when the log outgrows
//! [`DurabilityPolicy::compact_at_bytes`] it is compacted: snapshot
//! first, then the log is atomically replaced by its `C` record alone.
//!
//! Startup replays snapshot-plus-log: a valid snapshot seeds the state
//! and every batch record with `seq` at or below the snapshot version
//! is skipped — the sequence numbers, not byte offsets, make replay
//! insensitive to compaction. A corrupt or missing snapshot falls back
//! to pure log replay. A torn log tail (the crash window of an append)
//! or a checksum-failing suffix is truncated away; everything before it
//! survives, so recovery is always a *prefix* of the ingested history
//! with monotone versions — the invariant the chaos harness sweeps.

use crate::scheduler::FitSlot;
use crate::storage::{frame_record, scan_records, FsStorage, MemStorage, ScanStop, Storage};
use nhpp_data::io::{read_failure_times, read_grouped};
use nhpp_data::{FailureTimeData, GroupedData, ObservedData};
use nhpp_dist::Gamma;
use nhpp_models::prior::NhppPrior;
use nhpp_models::ModelSpec;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Whether a project ingests failure times or grouped counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// Exact failure times plus a censoring end (`D_T`).
    Times,
    /// Interval boundaries plus per-interval counts (`D_G`).
    Grouped,
}

impl DataKind {
    /// Stable keyword used in the API and the log.
    pub fn as_str(&self) -> &'static str {
        match self {
            DataKind::Times => "times",
            DataKind::Grouped => "grouped",
        }
    }

    /// Parses the keyword.
    ///
    /// # Errors
    ///
    /// A description of the offending keyword.
    pub fn parse(text: &str) -> Result<DataKind, String> {
        match text {
            "times" => Ok(DataKind::Times),
            "grouped" => Ok(DataKind::Grouped),
            other => Err(format!("unknown data kind '{other}' (times|grouped)")),
        }
    }
}

/// Immutable configuration a project is created with.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectConfig {
    /// Ingestion shape.
    pub kind: DataKind,
    /// Model family.
    pub spec: ModelSpec,
    /// Prior over `(ω, β)`.
    pub prior: NhppPrior,
    /// Canonical model keyword (`go`, `dss`, `gamma:<a0>`).
    pub model_label: String,
    /// Canonical prior keyword.
    pub prior_label: String,
}

impl ProjectConfig {
    /// Builds a configuration from the API keywords.
    ///
    /// # Errors
    ///
    /// A description of the offending keyword.
    pub fn from_labels(kind: &str, model: &str, prior: &str) -> Result<ProjectConfig, String> {
        let kind = DataKind::parse(kind)?;
        let spec = parse_model(model)?;
        let prior_value = parse_prior(prior)?;
        Ok(ProjectConfig {
            kind,
            spec,
            prior: prior_value,
            model_label: model.to_string(),
            prior_label: prior.to_string(),
        })
    }
}

/// Parses a model keyword: `go`, `dss` or `gamma:<alpha0>`.
///
/// # Errors
///
/// A description of the offending keyword.
pub fn parse_model(text: &str) -> Result<ModelSpec, String> {
    match text {
        "go" => Ok(ModelSpec::goel_okumoto()),
        "dss" => Ok(ModelSpec::delayed_s_shaped()),
        other => match other.strip_prefix("gamma:") {
            Some(raw) => {
                let alpha0: f64 = raw
                    .parse()
                    .map_err(|_| format!("bad gamma shape '{raw}'"))?;
                ModelSpec::gamma_type(alpha0).map_err(|e| e.to_string())
            }
            None => Err(format!("unknown model '{other}' (go|dss|gamma:<a0>)")),
        },
    }
}

/// Parses a prior keyword: `paper-info-times`, `paper-info-grouped`,
/// `flat`, or `wmean,wsd,bmean,bsd`.
///
/// # Errors
///
/// A description of the offending keyword.
pub fn parse_prior(text: &str) -> Result<NhppPrior, String> {
    match text {
        "paper-info-times" => Ok(NhppPrior::paper_info_times()),
        "paper-info-grouped" => Ok(NhppPrior::paper_info_grouped()),
        "flat" => Ok(NhppPrior::flat()),
        other => {
            let parts: Vec<&str> = other.split(',').collect();
            if parts.len() != 4 {
                return Err(format!(
                    "unknown prior '{other}' \
                     (paper-info-times|paper-info-grouped|flat|wmean,wsd,bmean,bsd)"
                ));
            }
            let mut values = [0.0f64; 4];
            for (slot, raw) in values.iter_mut().zip(&parts) {
                *slot = raw
                    .parse()
                    .map_err(|_| format!("bad prior component '{raw}'"))?;
            }
            let omega = Gamma::from_mean_sd(values[0], values[1]).map_err(|e| e.to_string())?;
            let beta = Gamma::from_mean_sd(values[2], values[3]).map_err(|e| e.to_string())?;
            Ok(NhppPrior::informative(omega, beta))
        }
    }
}

/// Errors surfaced by registry operations, pre-classified for the HTTP
/// layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// Bad project id or keyword (HTTP 400).
    Invalid(String),
    /// A project exists with a different configuration (HTTP 409).
    Conflict(String),
    /// A batch violated the append-only data invariants (HTTP 400).
    Data(String),
    /// The durable log could not be written or read (HTTP 500).
    Io(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Invalid(m)
            | RegistryError::Conflict(m)
            | RegistryError::Data(m)
            | RegistryError::Io(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

fn io_err(context: &str, e: impl std::fmt::Display) -> RegistryError {
    RegistryError::Io(format!("{context}: {e}"))
}

/// When the registry snapshots and compacts project logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Write a snapshot every this many data versions (0 = never).
    pub snapshot_every: u64,
    /// Compact the log once it reaches this many bytes (0 = never).
    pub compact_at_bytes: u64,
}

impl Default for DurabilityPolicy {
    fn default() -> DurabilityPolicy {
        DurabilityPolicy {
            snapshot_every: 64,
            compact_at_bytes: 1 << 20,
        }
    }
}

/// Counters for durability events: what recovery found at startup and
/// what maintenance does at runtime. Exposed through `/metrics` and
/// asserted on by the chaos harness.
#[derive(Debug, Default)]
pub struct RecoveryStats {
    /// Torn log tails truncated during replay.
    pub torn_truncated: AtomicU64,
    /// Log suffixes dropped because a record failed its checksum.
    pub checksum_failures: AtomicU64,
    /// Snapshots that seeded a project's replay.
    pub snapshots_loaded: AtomicU64,
    /// Corrupt snapshots that forced pure log replay.
    pub snapshot_fallbacks: AtomicU64,
    /// Snapshots written by maintenance, compaction or shutdown.
    pub snapshots_written: AtomicU64,
    /// Log compactions performed.
    pub compactions_run: AtomicU64,
    /// Batch records skipped during replay because the snapshot already
    /// covered their sequence number.
    pub duplicates_skipped: AtomicU64,
    /// Snapshot/compaction attempts that failed (ingestion proceeds;
    /// durability falls back to the log).
    pub maintenance_failures: AtomicU64,
}

impl RecoveryStats {
    fn bump(&self, counter: &AtomicU64) {
        let _ = self;
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The durable backing of one project.
#[derive(Debug)]
struct ProjectStore {
    storage: Arc<dyn Storage>,
    log_name: String,
    snap_name: String,
    /// Current log length — drives the compaction trigger.
    log_bytes: u64,
    policy: DurabilityPolicy,
    stats: Arc<RecoveryStats>,
}

/// The mutable streaming state of one project.
#[derive(Debug)]
struct ProjectState {
    config: ProjectConfig,
    /// Observed failure times (`Times` projects).
    times: Vec<f64>,
    /// Observation end (`Times` projects; 0 before the first batch).
    t_end: f64,
    /// Interval boundaries (`Grouped` projects).
    boundaries: Vec<f64>,
    /// Interval counts (`Grouped` projects).
    counts: Vec<u64>,
    /// Monotone data version: the number of accepted batches.
    version: u64,
    /// Total failure events observed.
    event_count: u64,
    /// Durable backing (`None` = in-memory only).
    store: Option<ProjectStore>,
}

/// A point-in-time description of a project, cheap to serialise.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectSummary {
    /// Project id.
    pub id: String,
    /// Ingestion shape keyword.
    pub kind: &'static str,
    /// Model keyword.
    pub model: String,
    /// Prior keyword.
    pub prior: String,
    /// Data version (accepted batches).
    pub version: u64,
    /// Total failure events.
    pub event_count: u64,
    /// Observation end (times: seconds; grouped: last boundary).
    pub observation_end: f64,
}

/// One registered project. The fit slot and its condition variable live
/// here so the scheduler can coalesce per project without a global lock.
#[derive(Debug)]
pub struct Project {
    id: String,
    state: Mutex<ProjectState>,
    /// Cached fit + in-flight marker (owned by [`crate::scheduler`]).
    pub(crate) fit: Mutex<FitSlot>,
    /// Signalled when an in-flight fit completes.
    pub(crate) fit_ready: Condvar,
}

impl Project {
    fn from_state(id: String, state: ProjectState) -> Project {
        Project {
            id,
            state: Mutex::new(state),
            fit: Mutex::new(FitSlot::default()),
            fit_ready: Condvar::new(),
        }
    }

    fn new(id: String, config: ProjectConfig, store: Option<ProjectStore>) -> Project {
        Project::from_state(id, fresh_state(config, store))
    }

    /// The project id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Ingests one batch in the `nhpp_data::io` CSV format, appending
    /// it to the durable log first. Returns the number of new events.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Data`] when the batch violates the append-only
    /// invariants, [`RegistryError::Io`] when the log write fails (the
    /// in-memory state is left untouched in both cases).
    pub fn ingest(&self, batch_text: &str) -> Result<u64, RegistryError> {
        let mut state = self.state.lock().expect("project state poisoned");
        let staged = stage_batch(&state, batch_text)?;
        let next_version = state.version + 1;
        if let Some(store) = state.store.as_mut() {
            let mut body = format!("{next_version}\n").into_bytes();
            body.extend_from_slice(batch_text.as_bytes());
            store.log_bytes = store
                .storage
                .append(&store.log_name, &frame_record(b'B', &body))
                .map_err(|e| io_err("log append failed", e))?;
        }
        let added = staged.added;
        match staged.data {
            StagedData::Times { times, t_end } => {
                state.times = times;
                state.t_end = t_end;
            }
            StagedData::Grouped { boundaries, counts } => {
                state.boundaries = boundaries;
                state.counts = counts;
            }
        }
        state.version = next_version;
        state.event_count += added;
        maintain(&mut state);
        Ok(added)
    }

    /// Consistent snapshot for fitting: `(version, data, spec, prior)`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Data`] before any batch has been accepted (there
    /// is nothing to fit).
    pub fn snapshot(&self) -> Result<(u64, ObservedData, ModelSpec, NhppPrior), RegistryError> {
        let state = self.state.lock().expect("project state poisoned");
        if state.version == 0 {
            return Err(RegistryError::Data(format!(
                "project '{}' has no ingested data yet",
                self.id
            )));
        }
        let data = match state.config.kind {
            DataKind::Times => FailureTimeData::new(state.times.clone(), state.t_end)
                .map(ObservedData::from)
                .map_err(|e| RegistryError::Data(e.to_string()))?,
            DataKind::Grouped => GroupedData::new(state.boundaries.clone(), state.counts.clone())
                .map(ObservedData::from)
                .map_err(|e| RegistryError::Data(e.to_string()))?,
        };
        Ok((state.version, data, state.config.spec, state.config.prior))
    }

    /// The failure-time suffix starting at index `from` for incremental
    /// chart scoring: `(total_times, times[from..])`. `None` for grouped
    /// projects — control charts plot inter-failure gaps, which grouped
    /// data does not record.
    pub fn times_from(&self, from: usize) -> Option<(u64, Vec<f64>)> {
        let state = self.state.lock().expect("project state poisoned");
        if state.config.kind != DataKind::Times {
            return None;
        }
        let total = state.times.len();
        Some((total as u64, state.times[from.min(total)..].to_vec()))
    }

    /// The two newest failure times `(t_prev, t_last)` for the SPC
    /// check, when the project has at least two (`Times` only).
    pub fn newest_gap(&self) -> Option<(f64, f64)> {
        let state = self.state.lock().expect("project state poisoned");
        if state.config.kind != DataKind::Times || state.times.len() < 2 {
            return None;
        }
        let n = state.times.len();
        Some((state.times[n - 2], state.times[n - 1]))
    }

    /// The current data version.
    pub fn version(&self) -> u64 {
        self.state.lock().expect("project state poisoned").version
    }

    /// A serialisable description of the current state.
    pub fn summary(&self) -> ProjectSummary {
        let state = self.state.lock().expect("project state poisoned");
        let observation_end = match state.config.kind {
            DataKind::Times => state.t_end,
            DataKind::Grouped => state.boundaries.last().copied().unwrap_or(0.0),
        };
        ProjectSummary {
            id: self.id.clone(),
            kind: state.config.kind.as_str(),
            model: state.config.model_label.clone(),
            prior: state.config.prior_label.clone(),
            version: state.version,
            event_count: state.event_count,
            observation_end,
        }
    }

    /// The project configuration.
    pub fn config(&self) -> ProjectConfig {
        self.state
            .lock()
            .expect("project state poisoned")
            .config
            .clone()
    }

    /// Writes a snapshot of the current state now (no-op for in-memory
    /// projects or before the first batch).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the snapshot cannot be written.
    pub fn snapshot_now(&self) -> Result<(), RegistryError> {
        let mut state = self.state.lock().expect("project state poisoned");
        if state.version == 0 || state.store.is_none() {
            return Ok(());
        }
        let frame = frame_record(b'S', &encode_snapshot(&state));
        let store = state.store.as_mut().expect("store checked above");
        store
            .storage
            .replace(&store.snap_name, &frame)
            .map_err(|e| io_err("snapshot write failed", e))?;
        store.stats.bump(&store.stats.snapshots_written);
        Ok(())
    }

    /// Snapshots and compacts the project log regardless of policy
    /// thresholds. Returns `(log_bytes_before, log_bytes_after)`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Data`] before any batch has been accepted,
    /// [`RegistryError::Io`] when a write fails (the log is only
    /// replaced after the snapshot has landed, so a failure never loses
    /// data).
    pub fn force_compact(&self) -> Result<(u64, u64), RegistryError> {
        let mut state = self.state.lock().expect("project state poisoned");
        if state.store.is_none() {
            return Err(RegistryError::Data(format!(
                "project '{}' is in-memory only",
                self.id
            )));
        }
        if state.version == 0 {
            return Err(RegistryError::Data(format!(
                "project '{}' has no ingested data to compact",
                self.id
            )));
        }
        let snap_frame = frame_record(b'S', &encode_snapshot(&state));
        let config_frame = frame_record(b'C', config_body(&state.config).as_bytes());
        let store = state.store.as_mut().expect("store checked above");
        let before = store.log_bytes;
        store
            .storage
            .replace(&store.snap_name, &snap_frame)
            .map_err(|e| io_err("snapshot write failed", e))?;
        store.stats.bump(&store.stats.snapshots_written);
        store
            .storage
            .replace(&store.log_name, &config_frame)
            .map_err(|e| io_err("log compaction failed", e))?;
        store.log_bytes = config_frame.len() as u64;
        store.stats.bump(&store.stats.compactions_run);
        Ok((before, store.log_bytes))
    }
}

fn fresh_state(config: ProjectConfig, store: Option<ProjectStore>) -> ProjectState {
    ProjectState {
        config,
        times: Vec::new(),
        t_end: 0.0,
        boundaries: Vec::new(),
        counts: Vec::new(),
        version: 0,
        event_count: 0,
        store,
    }
}

/// The `C` record body for a configuration.
fn config_body(config: &ProjectConfig) -> String {
    format!(
        "{} {} {}",
        config.kind.as_str(),
        config.model_label,
        config.prior_label
    )
}

/// Post-ingest maintenance: periodic snapshot and size-triggered
/// compaction. Failures are counted, never surfaced — the log already
/// holds the batch, so durability is intact either way.
fn maintain(state: &mut ProjectState) {
    let (due_snapshot, due_compact) = match state.store.as_ref() {
        None => return,
        Some(store) => (
            store.policy.snapshot_every > 0 && state.version.is_multiple_of(store.policy.snapshot_every),
            store.policy.compact_at_bytes > 0 && store.log_bytes >= store.policy.compact_at_bytes,
        ),
    };
    if !due_snapshot && !due_compact {
        return;
    }
    let snap_frame = frame_record(b'S', &encode_snapshot(state));
    let config_frame = frame_record(b'C', config_body(&state.config).as_bytes());
    let store = state.store.as_mut().expect("store checked above");
    if store
        .storage
        .replace(&store.snap_name, &snap_frame)
        .is_err()
    {
        store.stats.bump(&store.stats.maintenance_failures);
        return;
    }
    store.stats.bump(&store.stats.snapshots_written);
    if due_compact {
        if store
            .storage
            .replace(&store.log_name, &config_frame)
            .is_err()
        {
            store.stats.bump(&store.stats.maintenance_failures);
            return;
        }
        store.log_bytes = config_frame.len() as u64;
        store.stats.bump(&store.stats.compactions_run);
    }
}

// ---------------------------------------------------------------------
// Snapshot encoding.
// ---------------------------------------------------------------------

/// Decoded `S` record body.
struct SnapshotState {
    config: ProjectConfig,
    times: Vec<f64>,
    t_end: f64,
    boundaries: Vec<f64>,
    counts: Vec<u64>,
    version: u64,
    event_count: u64,
}

/// Serialises the full project state as the line-oriented `S` body.
/// `f64` `Display` round-trips exactly through `parse`, so a decoded
/// snapshot is bit-identical to the state that wrote it.
fn encode_snapshot(state: &ProjectState) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + 24 * state.times.len().max(state.counts.len()));
    let _ = writeln!(out, "version {}", state.version);
    let _ = writeln!(out, "events {}", state.event_count);
    let _ = writeln!(out, "config {}", config_body(&state.config));
    match state.config.kind {
        DataKind::Times => {
            let _ = writeln!(out, "t_end {}", state.t_end);
            out.push_str("times");
            for t in &state.times {
                let _ = write!(out, " {t}");
            }
            out.push('\n');
        }
        DataKind::Grouped => {
            out.push_str("bounds");
            for b in &state.boundaries {
                let _ = write!(out, " {b}");
            }
            out.push_str("\ncounts");
            for c in &state.counts {
                let _ = write!(out, " {c}");
            }
            out.push('\n');
        }
    }
    out.into_bytes()
}

fn parse_list<T: std::str::FromStr>(rest: &str, what: &str) -> Result<Vec<T>, String> {
    rest.split_whitespace()
        .map(|tok| tok.parse().map_err(|_| format!("bad {what} '{tok}'")))
        .collect()
}

/// Decodes and *validates* an `S` body: the dataset must satisfy the
/// same invariants the canonical constructors enforce, and the event
/// count must match, so a decoded snapshot can never poison a registry.
fn decode_snapshot(body: &[u8]) -> Result<SnapshotState, String> {
    let text = std::str::from_utf8(body).map_err(|_| "non-UTF-8 snapshot".to_string())?;
    let mut version = None;
    let mut event_count = None;
    let mut config: Option<ProjectConfig> = None;
    let mut t_end = 0.0f64;
    let mut times = Vec::new();
    let mut boundaries = Vec::new();
    let mut counts = Vec::new();
    for line in text.lines() {
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "version" => version = Some(rest.parse().map_err(|_| "bad version")?),
            "events" => event_count = Some(rest.parse().map_err(|_| "bad events")?),
            "config" => {
                let mut parts = rest.split_whitespace();
                let (kind, model, prior) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(k), Some(m), Some(p)) => (k, m, p),
                    _ => return Err("malformed config line".to_string()),
                };
                config = Some(ProjectConfig::from_labels(kind, model, prior)?);
            }
            "t_end" => t_end = rest.parse().map_err(|_| "bad t_end")?,
            "times" => times = parse_list(rest, "time")?,
            "bounds" => boundaries = parse_list(rest, "boundary")?,
            "counts" => counts = parse_list(rest, "count")?,
            other => return Err(format!("unknown snapshot key '{other}'")),
        }
    }
    let version: u64 = version.ok_or("snapshot missing version")?;
    let event_count: u64 = event_count.ok_or("snapshot missing events")?;
    let config = config.ok_or("snapshot missing config")?;
    if version > 0 {
        match config.kind {
            DataKind::Times => {
                FailureTimeData::new(times.clone(), t_end).map_err(|e| e.to_string())?;
                if event_count != times.len() as u64 {
                    return Err("snapshot event count disagrees with times".to_string());
                }
            }
            DataKind::Grouped => {
                GroupedData::new(boundaries.clone(), counts.clone()).map_err(|e| e.to_string())?;
                if event_count != counts.iter().sum::<u64>() {
                    return Err("snapshot event count disagrees with counts".to_string());
                }
            }
        }
    }
    Ok(SnapshotState {
        config,
        times,
        t_end,
        boundaries,
        counts,
        version,
        event_count,
    })
}

/// Parses a snapshot *file*: exactly one cleanly-framed `S` record.
fn parse_snapshot_file(bytes: &[u8]) -> Result<SnapshotState, String> {
    let scan = scan_records(bytes);
    if scan.stop.is_some() || scan.records.len() != 1 {
        return Err("snapshot file is not one clean record".to_string());
    }
    let (tag, body) = &scan.records[0];
    if *tag != b'S' {
        return Err(format!("unexpected snapshot tag {tag}"));
    }
    decode_snapshot(body)
}

// ---------------------------------------------------------------------
// Batch staging (shared by ingest and replay).
// ---------------------------------------------------------------------

/// A validated batch, not yet committed.
struct Staged {
    data: StagedData,
    added: u64,
}

enum StagedData {
    Times { times: Vec<f64>, t_end: f64 },
    Grouped { boundaries: Vec<f64>, counts: Vec<u64> },
}

/// Validates a batch against the append-only invariants and produces
/// the merged dataset without mutating anything.
fn stage_batch(state: &ProjectState, batch_text: &str) -> Result<Staged, RegistryError> {
    match state.config.kind {
        DataKind::Times => {
            let batch = read_failure_times(batch_text.as_bytes())
                .map_err(|e| RegistryError::Data(format!("bad times batch: {e}")))?;
            if state.version > 0 && batch.observation_end() < state.t_end {
                return Err(RegistryError::Data(format!(
                    "batch t_end {} precedes current observation end {}",
                    batch.observation_end(),
                    state.t_end
                )));
            }
            if let (Some(&last), Some(&first)) = (state.times.last(), batch.times().first()) {
                if first < last {
                    return Err(RegistryError::Data(format!(
                        "batch starts at {first} before the newest recorded failure {last}"
                    )));
                }
            }
            let mut times = state.times.clone();
            times.extend_from_slice(batch.times());
            let t_end = batch.observation_end();
            // Revalidate the merged dataset through the canonical
            // constructor so a registry invariant can never drift from
            // the `FailureTimeData` one.
            FailureTimeData::new(times.clone(), t_end)
                .map_err(|e| RegistryError::Data(e.to_string()))?;
            Ok(Staged {
                added: batch.len() as u64,
                data: StagedData::Times { times, t_end },
            })
        }
        DataKind::Grouped => {
            let batch = read_grouped(batch_text.as_bytes())
                .map_err(|e| RegistryError::Data(format!("bad grouped batch: {e}")))?;
            if let (Some(&last), Some(&first)) =
                (state.boundaries.last(), batch.boundaries().first())
            {
                if first <= last {
                    return Err(RegistryError::Data(format!(
                        "batch boundary {first} does not extend the last boundary {last}"
                    )));
                }
            }
            let mut boundaries = state.boundaries.clone();
            boundaries.extend_from_slice(batch.boundaries());
            let mut counts = state.counts.clone();
            counts.extend_from_slice(batch.counts());
            GroupedData::new(boundaries.clone(), counts.clone())
                .map_err(|e| RegistryError::Data(e.to_string()))?;
            Ok(Staged {
                added: batch.total_count(),
                data: StagedData::Grouped { boundaries, counts },
            })
        }
    }
}

/// Commits a staged batch into `state` (no log write — replay only).
fn commit_staged(state: &mut ProjectState, staged: Staged) {
    match staged.data {
        StagedData::Times { times, t_end } => {
            state.times = times;
            state.t_end = t_end;
        }
        StagedData::Grouped { boundaries, counts } => {
            state.boundaries = boundaries;
            state.counts = counts;
        }
    }
    state.version += 1;
    state.event_count += staged.added;
}

/// Outcome of [`Registry::create`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateOutcome {
    /// The project was created.
    Created,
    /// A project with the identical configuration already exists
    /// (creation is idempotent).
    AlreadyExists,
}

/// The registry: all projects, plus their durable storage.
#[derive(Debug)]
pub struct Registry {
    storage: Option<Arc<dyn Storage>>,
    policy: DurabilityPolicy,
    stats: Arc<RecoveryStats>,
    projects: Mutex<BTreeMap<String, Arc<Project>>>,
}

impl Registry {
    /// Opens a registry. With a directory, every project in it is
    /// replayed through [`FsStorage`] (creating the directory if
    /// absent) under the default [`DurabilityPolicy`]; with `None` the
    /// registry is in-memory only (tests, benchmarks).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory cannot be created or a
    /// file cannot be read; [`RegistryError::Data`] when a
    /// checksum-valid record fails to re-apply (true corruption beyond
    /// what truncation can absorb).
    pub fn open(dir: Option<&Path>) -> Result<Registry, RegistryError> {
        match dir {
            None => Ok(Registry {
                storage: None,
                policy: DurabilityPolicy::default(),
                stats: Arc::new(RecoveryStats::default()),
                projects: Mutex::new(BTreeMap::new()),
            }),
            Some(dir) => {
                let storage = FsStorage::open(dir)
                    .map_err(|e| io_err(&format!("cannot open {}", dir.display()), e))?;
                Registry::open_with(Arc::new(storage), DurabilityPolicy::default())
            }
        }
    }

    /// Opens a registry over an explicit storage backend — the entry
    /// point of the chaos harness and of `nhpp fsck`'s dry-run replay.
    ///
    /// # Errors
    ///
    /// As [`Registry::open`].
    pub fn open_with(
        storage: Arc<dyn Storage>,
        policy: DurabilityPolicy,
    ) -> Result<Registry, RegistryError> {
        let registry = Registry {
            storage: Some(storage.clone()),
            policy,
            stats: Arc::new(RecoveryStats::default()),
            projects: Mutex::new(BTreeMap::new()),
        };
        for id in stored_ids(storage.as_ref())? {
            registry.replay_project(&id)?;
        }
        Ok(registry)
    }

    /// The recovery/maintenance counters.
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// The storage backend, when the registry is durable. Subsystems
    /// that persist sidecar state next to the project logs (the monitor
    /// writes `<id>.mon` chart journals) share the backend through
    /// this handle so chaos harnesses fault-inject both in one plan.
    pub fn storage_handle(&self) -> Option<Arc<dyn Storage>> {
        self.storage.clone()
    }

    /// The active durability policy.
    pub fn policy(&self) -> DurabilityPolicy {
        self.policy
    }

    /// Overrides the durability policy for projects created *after*
    /// this call (existing projects keep their store's policy).
    pub fn set_policy(&mut self, policy: DurabilityPolicy) {
        self.policy = policy;
    }

    /// Creates a project (idempotent when the configuration matches).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Invalid`] for a bad id,
    /// [`RegistryError::Conflict`] when the id exists with a different
    /// configuration, [`RegistryError::Io`] when the log cannot be
    /// started.
    pub fn create(&self, id: &str, config: ProjectConfig) -> Result<CreateOutcome, RegistryError> {
        validate_id(id)?;
        let mut projects = self.projects.lock().expect("registry poisoned");
        if let Some(existing) = projects.get(id) {
            return if existing.config() == config {
                Ok(CreateOutcome::AlreadyExists)
            } else {
                Err(RegistryError::Conflict(format!(
                    "project '{id}' already exists with a different configuration"
                )))
            };
        }
        let store = match &self.storage {
            Some(storage) => {
                let log_name = format!("{id}.log");
                let frame = frame_record(b'C', config_body(&config).as_bytes());
                let log_bytes = storage
                    .append(&log_name, &frame)
                    .map_err(|e| io_err("log append failed", e))?;
                Some(ProjectStore {
                    storage: storage.clone(),
                    log_name,
                    snap_name: format!("{id}.snap"),
                    log_bytes,
                    policy: self.policy,
                    stats: self.stats.clone(),
                })
            }
            None => None,
        };
        projects.insert(
            id.to_string(),
            Arc::new(Project::new(id.to_string(), config, store)),
        );
        Ok(CreateOutcome::Created)
    }

    /// Looks up a project.
    pub fn get(&self, id: &str) -> Option<Arc<Project>> {
        self.projects
            .lock()
            .expect("registry poisoned")
            .get(id)
            .cloned()
    }

    /// All projects, in id order.
    pub fn all(&self) -> Vec<Arc<Project>> {
        self.projects
            .lock()
            .expect("registry poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Snapshots every project (graceful-shutdown hook: the next
    /// startup replays snapshot-plus-nothing). Best effort — failures
    /// are counted in [`RecoveryStats::maintenance_failures`]. Returns
    /// the number of snapshots written.
    pub fn snapshot_all(&self) -> u64 {
        let mut written = 0;
        for project in self.all() {
            match project.snapshot_now() {
                Ok(()) => written += 1,
                Err(_) => self.stats.bump(&self.stats.maintenance_failures),
            }
        }
        written
    }

    /// Replays one project from its snapshot and log.
    fn replay_project(&self, id: &str) -> Result<(), RegistryError> {
        let storage = self.storage.as_ref().expect("replay requires storage");
        let log_name = format!("{id}.log");
        let snap_name = format!("{id}.snap");

        // Snapshot first: a valid one seeds the state; a corrupt one
        // falls back to pure log replay.
        let mut state: Option<ProjectState> = None;
        if let Some(bytes) = storage
            .read(&snap_name)
            .map_err(|e| io_err("snapshot read failed", e))?
        {
            match parse_snapshot_file(&bytes) {
                Ok(snap) => {
                    self.stats.bump(&self.stats.snapshots_loaded);
                    state = Some(ProjectState {
                        config: snap.config,
                        times: snap.times,
                        t_end: snap.t_end,
                        boundaries: snap.boundaries,
                        counts: snap.counts,
                        version: snap.version,
                        event_count: snap.event_count,
                        store: None,
                    });
                }
                Err(_) => self.stats.bump(&self.stats.snapshot_fallbacks),
            }
        }

        // Scan the log, truncating a torn or corrupt suffix so the next
        // append lands on a clean prefix.
        let log_bytes = storage
            .read(&log_name)
            .map_err(|e| io_err("log read failed", e))?
            .unwrap_or_default();
        let scan = scan_records(&log_bytes);
        match scan.stop {
            Some(ScanStop::TornTail) => self.stats.bump(&self.stats.torn_truncated),
            Some(ScanStop::Corrupt) => self.stats.bump(&self.stats.checksum_failures),
            None => {}
        }
        if scan.stop.is_some() {
            storage
                .truncate(&log_name, scan.valid_len)
                .map_err(|e| io_err("log truncation failed", e))?;
        }

        if state.is_none() && scan.records.is_empty() {
            // Nothing recoverable: a create whose very first append was
            // torn away. The project never existed durably.
            return Ok(());
        }

        for (tag, body) in &scan.records {
            match tag {
                b'C' => {
                    let text = std::str::from_utf8(body).map_err(|_| {
                        RegistryError::Data(format!("non-UTF-8 config record in {log_name}"))
                    })?;
                    let mut parts = text.split_whitespace();
                    let (kind, model, prior) = match (parts.next(), parts.next(), parts.next()) {
                        (Some(k), Some(m), Some(p)) => (k, m, p),
                        _ => {
                            return Err(RegistryError::Data(format!(
                                "malformed config record in {log_name}"
                            )))
                        }
                    };
                    let config = ProjectConfig::from_labels(kind, model, prior)
                        .map_err(RegistryError::Data)?;
                    match &state {
                        None => state = Some(fresh_state(config, None)),
                        Some(existing) => {
                            if existing.config != config {
                                return Err(RegistryError::Data(format!(
                                    "config record in {log_name} disagrees with snapshot"
                                )));
                            }
                        }
                    }
                }
                b'B' => {
                    let state = state.as_mut().ok_or_else(|| {
                        RegistryError::Data(format!("batch before config record in {log_name}"))
                    })?;
                    let text = std::str::from_utf8(body).map_err(|_| {
                        RegistryError::Data(format!("non-UTF-8 batch record in {log_name}"))
                    })?;
                    let (seq_text, csv) = text.split_once('\n').ok_or_else(|| {
                        RegistryError::Data(format!("batch record without sequence in {log_name}"))
                    })?;
                    let seq: u64 = seq_text.trim().parse().map_err(|_| {
                        RegistryError::Data(format!("bad batch sequence '{seq_text}' in {log_name}"))
                    })?;
                    if seq <= state.version {
                        // Already covered by the snapshot (or a replayed
                        // duplicate): sequence numbers make replay
                        // insensitive to compaction.
                        self.stats.bump(&self.stats.duplicates_skipped);
                        continue;
                    }
                    if seq != state.version + 1 {
                        return Err(RegistryError::Data(format!(
                            "sequence gap in {log_name}: have version {}, next record is {seq}",
                            state.version
                        )));
                    }
                    let staged = stage_batch(state, csv)?;
                    commit_staged(state, staged);
                }
                other => {
                    return Err(RegistryError::Data(format!(
                        "unknown record tag {other} in {log_name}"
                    )))
                }
            }
        }

        let mut state = state.expect("state exists when records or snapshot do");
        state.store = Some(ProjectStore {
            storage: storage.clone(),
            log_name,
            snap_name,
            log_bytes: scan.valid_len,
            policy: self.policy,
            stats: self.stats.clone(),
        });
        self.projects.lock().expect("registry poisoned").insert(
            id.to_string(),
            Arc::new(Project::from_state(id.to_string(), state)),
        );
        Ok(())
    }
}

/// Project ids found in storage: stems of `*.log` / `*.snap` names.
fn stored_ids(storage: &dyn Storage) -> Result<Vec<String>, RegistryError> {
    let mut ids = BTreeSet::new();
    for name in storage.list().map_err(|e| io_err("storage list failed", e))? {
        let stem = name
            .strip_suffix(".log")
            .or_else(|| name.strip_suffix(".snap"));
        if let Some(stem) = stem {
            if validate_id(stem).is_ok() {
                ids.insert(stem.to_string());
            }
        }
    }
    Ok(ids.into_iter().collect())
}

/// Project ids are path- and URL-safe by construction.
fn validate_id(id: &str) -> Result<(), RegistryError> {
    let ok = !id.is_empty()
        && id.len() <= 64
        && !id.starts_with('.')
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(RegistryError::Invalid(format!(
            "invalid project id '{id}' (1-64 chars of [A-Za-z0-9._-], no leading dot)"
        )))
    }
}

// ---------------------------------------------------------------------
// Offline verification (`nhpp fsck`).
// ---------------------------------------------------------------------

/// Snapshot health as seen by [`fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotStatus {
    /// No snapshot file.
    Missing,
    /// A clean snapshot at this version.
    Valid {
        /// Data version the snapshot captures.
        version: u64,
    },
    /// The snapshot exists but fails framing, checksum or decoding —
    /// startup will fall back to pure log replay.
    Corrupt,
}

/// Per-project report from [`fsck`].
#[derive(Debug, Clone)]
pub struct FsckEntry {
    /// Project id.
    pub id: String,
    /// Log length in bytes.
    pub log_bytes: u64,
    /// Cleanly-framed records in the log.
    pub log_records: usize,
    /// Bytes past the last valid record (0 = clean tail).
    pub torn_tail_bytes: u64,
    /// Whether the tail was cut by a checksum failure (true corruption)
    /// rather than a torn write.
    pub checksum_corrupt: bool,
    /// Sequence number of the first batch record (> 1 once the log has
    /// been compacted).
    pub first_batch_seq: Option<u64>,
    /// Snapshot health.
    pub snapshot: SnapshotStatus,
    /// Data version a dry-run replay recovers, or the error it hits.
    pub recovery: Result<u64, String>,
}

impl FsckEntry {
    /// Whether startup would recover this project without data loss
    /// beyond a torn tail.
    pub fn healthy(&self) -> bool {
        !self.checksum_corrupt && self.snapshot != SnapshotStatus::Corrupt && self.recovery.is_ok()
    }
}

/// Verifies every project in `storage` without modifying it: checksums
/// are scanned in place and recovery is dry-run against an in-memory
/// copy, so `fsck` is safe to run against a live data directory.
///
/// # Errors
///
/// [`RegistryError::Io`] when the storage itself cannot be read.
pub fn fsck(storage: &dyn Storage) -> Result<Vec<FsckEntry>, RegistryError> {
    let mut entries = Vec::new();
    for id in stored_ids(storage)? {
        let log_name = format!("{id}.log");
        let snap_name = format!("{id}.snap");
        let log_bytes = storage
            .read(&log_name)
            .map_err(|e| io_err("log read failed", e))?
            .unwrap_or_default();
        let snap_bytes = storage
            .read(&snap_name)
            .map_err(|e| io_err("snapshot read failed", e))?;

        let scan = scan_records(&log_bytes);
        let snapshot = match &snap_bytes {
            None => SnapshotStatus::Missing,
            Some(bytes) => match parse_snapshot_file(bytes) {
                Ok(snap) => SnapshotStatus::Valid {
                    version: snap.version,
                },
                Err(_) => SnapshotStatus::Corrupt,
            },
        };
        let first_batch_seq = scan.records.iter().find_map(|(tag, body)| {
            if *tag != b'B' {
                return None;
            }
            let text = std::str::from_utf8(body).ok()?;
            text.split_once('\n')?.0.trim().parse().ok()
        });

        // Dry-run recovery on a copy: any tail truncation happens on
        // the in-memory clone, never on the inspected storage.
        let mut copy = BTreeMap::new();
        copy.insert(log_name, log_bytes.clone());
        if let Some(bytes) = snap_bytes {
            copy.insert(snap_name, bytes);
        }
        let recovery = Registry::open_with(
            Arc::new(MemStorage::from_map(copy)),
            DurabilityPolicy::default(),
        )
        .map(|registry| registry.get(&id).map_or(0, |p| p.version()))
        .map_err(|e| e.to_string());

        entries.push(FsckEntry {
            id,
            log_bytes: log_bytes.len() as u64,
            log_records: scan.records.len(),
            torn_tail_bytes: log_bytes.len() as u64 - scan.valid_len,
            checksum_corrupt: scan.stop == Some(ScanStop::Corrupt),
            first_batch_seq,
            snapshot,
            recovery,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nhpp-serve-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn times_config() -> ProjectConfig {
        ProjectConfig::from_labels("times", "go", "paper-info-times").unwrap()
    }

    fn batch(times: &[f64], t_end: f64) -> String {
        let mut text = format!("# t_end={t_end}\n");
        for t in times {
            text.push_str(&format!("{t}\n"));
        }
        text
    }

    /// A policy that never snapshots or compacts on its own, so tests
    /// control maintenance explicitly.
    fn manual_policy() -> DurabilityPolicy {
        DurabilityPolicy {
            snapshot_every: 0,
            compact_at_bytes: 0,
        }
    }

    fn mem_registry(policy: DurabilityPolicy) -> (Arc<MemStorage>, Registry) {
        let storage = Arc::new(MemStorage::new());
        let registry = Registry::open_with(storage.clone(), policy).unwrap();
        (storage, registry)
    }

    fn reopen(storage: &Arc<MemStorage>) -> Registry {
        Registry::open_with(
            Arc::new(MemStorage::from_map(storage.dump())),
            manual_policy(),
        )
        .unwrap()
    }

    #[test]
    fn create_is_idempotent_and_conflicts_on_mismatch() {
        let registry = Registry::open(None).unwrap();
        assert_eq!(
            registry.create("p1", times_config()).unwrap(),
            CreateOutcome::Created
        );
        assert_eq!(
            registry.create("p1", times_config()).unwrap(),
            CreateOutcome::AlreadyExists
        );
        let other = ProjectConfig::from_labels("times", "dss", "paper-info-times").unwrap();
        assert!(matches!(
            registry.create("p1", other),
            Err(RegistryError::Conflict(_))
        ));
        assert!(matches!(
            registry.create("../evil", times_config()),
            Err(RegistryError::Invalid(_))
        ));
    }

    #[test]
    fn ingestion_is_append_only_and_versioned() {
        let registry = Registry::open(None).unwrap();
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        assert!(p.snapshot().is_err(), "no data yet");

        assert_eq!(p.ingest(&batch(&[1.0, 2.0], 3.0)).unwrap(), 2);
        assert_eq!(p.ingest(&batch(&[4.5], 5.0)).unwrap(), 1);
        // A batch may advance the censoring end without new failures.
        assert_eq!(p.ingest(&batch(&[], 6.0)).unwrap(), 0);
        assert_eq!(p.version(), 3);
        let (version, data, _, _) = p.snapshot().unwrap();
        assert_eq!(version, 3);
        assert_eq!(data.total_count(), 3);
        assert_eq!(data.observation_end(), 6.0);

        // Rejections leave state untouched.
        assert!(p.ingest(&batch(&[0.5], 7.0)).is_err(), "out of order");
        assert!(p.ingest(&batch(&[6.5], 5.0)).is_err(), "t_end went back");
        assert_eq!(p.version(), 3);
    }

    #[test]
    fn grouped_ingestion_extends_boundaries() {
        let registry = Registry::open(None).unwrap();
        let config = ProjectConfig::from_labels("grouped", "go", "paper-info-grouped").unwrap();
        registry.create("g1", config).unwrap();
        let p = registry.get("g1").unwrap();
        assert_eq!(p.ingest("1,3\n2,1\n").unwrap(), 4);
        assert_eq!(p.ingest("3,0\n4,2\n").unwrap(), 2);
        assert!(p.ingest("4,1\n").is_err(), "non-extending boundary");
        let (version, data, _, _) = p.snapshot().unwrap();
        assert_eq!(version, 2);
        assert_eq!(data.total_count(), 6);
    }

    #[test]
    fn persistence_round_trip_restores_identical_state() {
        let dir = temp_dir("roundtrip");
        let summary_before;
        {
            let registry = Registry::open(Some(&dir)).unwrap();
            registry.create("p1", times_config()).unwrap();
            let p = registry.get("p1").unwrap();
            for k in 0..10 {
                let t = (k + 1) as f64 * 10.0;
                p.ingest(&batch(&[t], t + 5.0)).unwrap();
            }
            summary_before = p.summary();
        }
        // "Restart": a fresh registry replays the log.
        let registry = Registry::open(Some(&dir)).unwrap();
        let p = registry.get("p1").unwrap();
        assert_eq!(p.summary(), summary_before);
        let (version, data, _, _) = p.snapshot().unwrap();
        assert_eq!(version, 10);
        assert_eq!(data.total_count(), 10);
        assert_eq!(data.observation_end(), 105.0);
        // And the recovered registry keeps accepting appends.
        p.ingest(&batch(&[110.0], 120.0)).unwrap();
        assert_eq!(p.version(), 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_is_truncated_cleanly() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        p.ingest(&batch(&[1.0, 2.0], 3.0)).unwrap();
        p.ingest(&batch(&[4.0], 5.0)).unwrap();
        // Simulate a crash mid-append: a record cut short of its frame.
        let torn = frame_record(b'B', b"3\n# t_end=9\n6.0\n");
        storage.append("p1.log", &torn[..torn.len() - 5]).unwrap();
        let len_with_torn = storage.read("p1.log").unwrap().unwrap().len();

        let survivor = Arc::new(MemStorage::from_map(storage.dump()));
        let registry = Registry::open_with(survivor.clone(), manual_policy()).unwrap();
        assert_eq!(registry.stats().torn_truncated.load(Ordering::Relaxed), 1);
        let p = registry.get("p1").unwrap();
        // The torn record is gone; the two complete batches survive.
        assert_eq!(p.version(), 2);
        let (_, data, _, _) = p.snapshot().unwrap();
        assert_eq!(data.total_count(), 3);
        assert!(
            survivor.read("p1.log").unwrap().unwrap().len() < len_with_torn,
            "torn tail was truncated away"
        );
        // The next append lands after the truncation point and a third
        // replay sees it.
        p.ingest(&batch(&[6.0], 7.0)).unwrap();
        let registry = reopen(&survivor);
        assert_eq!(registry.get("p1").unwrap().version(), 3);
    }

    #[test]
    fn torn_length_prefix_is_truncated_cleanly() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        registry
            .get("p1")
            .unwrap()
            .ingest(&batch(&[1.0], 2.0))
            .unwrap();
        // Two bytes of an eight-byte frame header.
        storage.append("p1.log", &[0x10, 0x00]).unwrap();
        let registry = reopen(&storage);
        assert_eq!(registry.get("p1").unwrap().version(), 1);
    }

    #[test]
    fn checksum_corruption_drops_the_suffix() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        p.ingest(&batch(&[1.0], 2.0)).unwrap();
        p.ingest(&batch(&[3.0], 4.0)).unwrap();
        // Flip a bit inside the last record's payload.
        let mut bytes = storage.read("p1.log").unwrap().unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        storage.replace("p1.log", &bytes).unwrap();

        let registry = reopen(&storage);
        assert_eq!(
            registry.stats().checksum_failures.load(Ordering::Relaxed),
            1
        );
        let p = registry.get("p1").unwrap();
        assert_eq!(p.version(), 1, "clean prefix survives");
    }

    #[test]
    fn empty_log_is_skipped_not_fatal() {
        let storage = Arc::new(MemStorage::new());
        storage.append("ghost.log", b"").unwrap();
        let registry = Registry::open_with(storage, manual_policy()).unwrap();
        assert!(registry.get("ghost").is_none());
        assert!(registry.all().is_empty());
    }

    #[test]
    fn zero_length_record_is_treated_as_corruption() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        registry
            .get("p1")
            .unwrap()
            .ingest(&batch(&[1.0], 2.0))
            .unwrap();
        // A zero-length frame: len=0, crc of empty payload.
        storage.append("p1.log", &0u32.to_le_bytes()).unwrap();
        storage
            .append("p1.log", &crate::storage::crc32(b"").to_le_bytes())
            .unwrap();
        let registry = reopen(&storage);
        assert_eq!(
            registry.stats().checksum_failures.load(Ordering::Relaxed),
            1
        );
        assert_eq!(registry.get("p1").unwrap().version(), 1);
    }

    #[test]
    fn duplicate_sequence_numbers_are_skipped() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        p.ingest(&batch(&[1.0], 2.0)).unwrap();
        // Re-append a copy of the seq-1 batch record (a replayed
        // duplicate, e.g. from an at-least-once upstream writer).
        let dup = format!("1\n{}", batch(&[1.0], 2.0));
        storage
            .append("p1.log", &frame_record(b'B', dup.as_bytes()))
            .unwrap();
        let registry = reopen(&storage);
        assert_eq!(
            registry.stats().duplicates_skipped.load(Ordering::Relaxed),
            1
        );
        let p = registry.get("p1").unwrap();
        assert_eq!(p.version(), 1);
        assert_eq!(p.summary().event_count, 1, "duplicate did not re-apply");
    }

    #[test]
    fn sequence_gap_is_a_hard_error() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        registry
            .get("p1")
            .unwrap()
            .ingest(&batch(&[1.0], 2.0))
            .unwrap();
        let gap = format!("5\n{}", batch(&[3.0], 4.0));
        storage
            .append("p1.log", &frame_record(b'B', gap.as_bytes()))
            .unwrap();
        let err = Registry::open_with(
            Arc::new(MemStorage::from_map(storage.dump())),
            manual_policy(),
        )
        .unwrap_err();
        assert!(matches!(err, RegistryError::Data(_)));
        assert!(err.to_string().contains("sequence gap"));
    }

    #[test]
    fn snapshot_round_trip_and_fallback() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        for k in 0..5 {
            let t = (k + 1) as f64 * 10.0;
            p.ingest(&batch(&[t], t + 5.0)).unwrap();
        }
        p.snapshot_now().unwrap();
        let summary = p.summary();
        assert_eq!(registry.stats().snapshots_written.load(Ordering::Relaxed), 1);

        // Reopen: the snapshot seeds the state and every log record is
        // a duplicate.
        let registry = reopen(&storage);
        assert_eq!(registry.stats().snapshots_loaded.load(Ordering::Relaxed), 1);
        assert_eq!(
            registry.stats().duplicates_skipped.load(Ordering::Relaxed),
            5
        );
        assert_eq!(registry.get("p1").unwrap().summary(), summary);

        // Corrupt the snapshot: replay falls back to the pure log and
        // recovers the identical state.
        let mut snap = storage.read("p1.snap").unwrap().unwrap();
        let n = snap.len();
        snap[n / 2] ^= 0xFF;
        storage.replace("p1.snap", &snap).unwrap();
        let registry = reopen(&storage);
        assert_eq!(
            registry.stats().snapshot_fallbacks.load(Ordering::Relaxed),
            1
        );
        assert_eq!(registry.get("p1").unwrap().summary(), summary);
    }

    #[test]
    fn snapshot_newer_than_log_tail_wins() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        p.ingest(&batch(&[1.0], 2.0)).unwrap();
        p.ingest(&batch(&[3.0], 4.0)).unwrap();
        p.snapshot_now().unwrap();
        // Truncate the log back to just the config record: the log tail
        // is now *older* than the snapshot (a compaction crash window
        // cannot produce this, but a restored-from-backup log can).
        let bytes = storage.read("p1.log").unwrap().unwrap();
        let config_len = frame_record(b'C', config_body(&times_config()).as_bytes()).len();
        storage.replace("p1.log", &bytes[..config_len]).unwrap();

        let registry = reopen(&storage);
        let p = registry.get("p1").unwrap();
        assert_eq!(p.version(), 2, "snapshot state wins over the stale log");
        assert_eq!(p.summary().event_count, 2);
        // And the project still extends cleanly from version 2.
        p.ingest(&batch(&[5.0], 6.0)).unwrap();
        assert_eq!(p.version(), 3);
    }

    #[test]
    fn compaction_bounds_replay_and_preserves_state() {
        let policy = DurabilityPolicy {
            snapshot_every: 0,
            compact_at_bytes: 1, // compact after every ingest
        };
        let (storage, registry) = mem_registry(policy);
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        for k in 0..8 {
            let t = (k + 1) as f64 * 10.0;
            p.ingest(&batch(&[t], t + 5.0)).unwrap();
        }
        assert_eq!(registry.stats().compactions_run.load(Ordering::Relaxed), 8);
        // The compacted log holds only the config record.
        let log = storage.read("p1.log").unwrap().unwrap();
        let scan = scan_records(&log);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].0, b'C');

        let summary = p.summary();
        let registry = reopen(&storage);
        let p = registry.get("p1").unwrap();
        assert_eq!(p.summary(), summary);
        assert_eq!(p.version(), 8);
        // Post-recovery ingestion continues the sequence.
        p.ingest(&batch(&[100.0], 110.0)).unwrap();
        assert_eq!(p.version(), 9);
    }

    #[test]
    fn force_compact_shrinks_the_log() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        for k in 0..20 {
            let t = (k + 1) as f64 * 10.0;
            p.ingest(&batch(&[t], t + 5.0)).unwrap();
        }
        let (before, after) = p.force_compact().unwrap();
        assert!(after < before, "compaction shrank the log");
        let summary = p.summary();
        let registry = reopen(&storage);
        assert_eq!(registry.get("p1").unwrap().summary(), summary);
    }

    #[test]
    fn periodic_snapshots_follow_policy() {
        let policy = DurabilityPolicy {
            snapshot_every: 3,
            compact_at_bytes: 0,
        };
        let (storage, registry) = mem_registry(policy);
        registry.create("p1", times_config()).unwrap();
        let p = registry.get("p1").unwrap();
        for k in 0..7 {
            let t = (k + 1) as f64 * 10.0;
            p.ingest(&batch(&[t], t + 5.0)).unwrap();
        }
        // Versions 3 and 6 snapshot.
        assert_eq!(registry.stats().snapshots_written.load(Ordering::Relaxed), 2);
        let snap = storage.read("p1.snap").unwrap().unwrap();
        let parsed = parse_snapshot_file(&snap).unwrap();
        assert_eq!(parsed.version, 6);
    }

    #[test]
    fn snapshot_all_writes_every_project() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("p1", times_config()).unwrap();
        registry.create("p2", times_config()).unwrap();
        registry.create("empty", times_config()).unwrap();
        registry
            .get("p1")
            .unwrap()
            .ingest(&batch(&[1.0], 2.0))
            .unwrap();
        registry
            .get("p2")
            .unwrap()
            .ingest(&batch(&[1.0], 2.0))
            .unwrap();
        // `empty` has no data: snapshot_now is a no-op, not a failure.
        assert_eq!(registry.snapshot_all(), 3);
        assert!(storage.read("p1.snap").unwrap().is_some());
        assert!(storage.read("p2.snap").unwrap().is_some());
        assert!(storage.read("empty.snap").unwrap().is_none());
    }

    #[test]
    fn grouped_snapshot_round_trips() {
        let (storage, registry) = mem_registry(manual_policy());
        let config = ProjectConfig::from_labels("grouped", "go", "paper-info-grouped").unwrap();
        registry.create("g1", config).unwrap();
        let p = registry.get("g1").unwrap();
        p.ingest("1,3\n2,1\n").unwrap();
        p.ingest("3,0\n4,2\n").unwrap();
        p.snapshot_now().unwrap();
        let summary = p.summary();
        let registry = reopen(&storage);
        assert_eq!(registry.get("g1").unwrap().summary(), summary);
    }

    #[test]
    fn fsck_reports_health_and_corruption() {
        let (storage, registry) = mem_registry(manual_policy());
        registry.create("good", times_config()).unwrap();
        registry.create("torn", times_config()).unwrap();
        let good = registry.get("good").unwrap();
        good.ingest(&batch(&[1.0], 2.0)).unwrap();
        good.ingest(&batch(&[3.0], 4.0)).unwrap();
        good.snapshot_now().unwrap();
        let torn_p = registry.get("torn").unwrap();
        torn_p.ingest(&batch(&[1.0], 2.0)).unwrap();
        let frame = frame_record(b'B', b"2\n# t_end=9\n6.0\n");
        storage.append("torn.log", &frame[..frame.len() - 3]).unwrap();

        let entries = fsck(storage.as_ref()).unwrap();
        assert_eq!(entries.len(), 2);
        let by_id = |id: &str| entries.iter().find(|e| e.id == id).unwrap();

        let good_entry = by_id("good");
        assert!(good_entry.healthy());
        assert_eq!(good_entry.torn_tail_bytes, 0);
        assert_eq!(good_entry.snapshot, SnapshotStatus::Valid { version: 2 });
        assert_eq!(good_entry.recovery, Ok(2));
        assert_eq!(good_entry.first_batch_seq, Some(1));

        let torn_entry = by_id("torn");
        assert!(torn_entry.healthy(), "a torn tail is recoverable");
        assert!(torn_entry.torn_tail_bytes > 0);
        assert!(!torn_entry.checksum_corrupt);
        assert_eq!(torn_entry.recovery, Ok(1));

        // fsck never modifies the inspected storage.
        let before = storage.dump();
        let _ = fsck(storage.as_ref()).unwrap();
        assert_eq!(storage.dump(), before);
    }

    #[test]
    fn parse_helpers_reject_garbage() {
        assert!(parse_model("go").is_ok());
        assert!(parse_model("gamma:2.5").is_ok());
        assert!(parse_model("gamma:-1").is_err());
        assert!(parse_model("weibull").is_err());
        assert!(parse_prior("flat").is_ok());
        assert!(parse_prior("50,15.8,1e-5,3.2e-6").is_ok());
        assert!(parse_prior("1,2,3").is_err());
        assert!(parse_prior("a,b,c,d").is_err());
        assert!(DataKind::parse("times").is_ok());
        assert!(DataKind::parse("stream").is_err());
    }
}
