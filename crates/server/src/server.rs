//! The long-running service: a `std::net::TcpListener` accept loop
//! fanned out over the existing [`nhpp_numeric::parallel`] worker pool.
//!
//! There is deliberately no async runtime here. The service's unit of
//! work is a *fit* — milliseconds of dense floating-point arithmetic —
//! not a high-fanout I/O wait, so blocking threads are the simplest
//! correct model: one acceptor thread admits connections into a bounded
//! work queue, request workers drain it, and a slow fit occupies
//! exactly one worker without starving the others.
//!
//! The bounded queue is the overload story: when it is full the
//! acceptor sheds the connection immediately with `503` +
//! `Retry-After` instead of letting latency grow without bound.
//! Shutdown is cooperative and graceful: a shared flag plus one
//! self-connect unblocks `accept`, the queue is closed, workers drain
//! what was already admitted, and the registry takes a final
//! crash-consistent snapshot so the next start replays only a tail.

use crate::http::{read_request, Response};
use crate::metrics::Metrics;
use crate::registry::{DurabilityPolicy, Registry};
use crate::routes;
use crate::scheduler::{flush_stale, FitCache, FitSettings};
use nhpp_vb::CalibrationDictionary;
use std::collections::VecDeque;
use std::io::{self, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything the route handlers can see. One instance, shared by all
/// workers and the flush thread.
pub struct AppState {
    /// Project registry (durable if the server was given a data dir).
    pub registry: Registry,
    /// Service counters.
    pub metrics: Metrics,
    /// Options + thread budget applied to every supervised fit.
    pub fit: FitSettings,
    /// LRU bound on cached posteriors (capacity `0` = unbounded).
    pub cache: FitCache,
    /// Seconds advertised in `Retry-After` on shed/deadline responses.
    pub retry_after_secs: u32,
    /// Coverage-recalibration dictionary loaded at boot, when the
    /// server was started with one; `?calibrated=true` queries resolve
    /// their factors here.
    pub calibration: Option<Arc<CalibrationDictionary>>,
    /// Streaming SPC monitor, when the server was started with
    /// monitoring enabled; `None` answers monitor routes with `409`.
    pub monitor: Option<Arc<crate::monitor::Monitor>>,
    /// Suppress per-request log lines.
    pub quiet: bool,
}

/// Server construction parameters.
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port `0` picks a free port.
    pub addr: String,
    /// Directory for durable project logs; `None` keeps state in memory.
    pub data_dir: Option<PathBuf>,
    /// Accept workers; `0` means [`nhpp_numeric::parallel::auto_threads`].
    pub workers: usize,
    /// Period of the background flush tick that batch-refits stale
    /// projects; `None` disables it (queries still refit on demand).
    pub flush_interval: Option<Duration>,
    /// Fit options and per-fit thread budget.
    pub fit: FitSettings,
    /// Bound on connections queued between the acceptor and the
    /// workers; beyond it the acceptor sheds with `503` +
    /// `Retry-After`. `0` means unbounded (no admission control).
    pub queue_capacity: usize,
    /// Bound on cached posteriors before LRU eviction; `0` = unbounded.
    pub max_cached_fits: usize,
    /// Seconds advertised in `Retry-After` on shed/deadline responses.
    pub retry_after_secs: u32,
    /// Snapshot/compaction policy applied to a durable registry.
    pub durability: DurabilityPolicy,
    /// Path of an `nhpp-calibration/v1` dictionary to load at boot;
    /// `None` serves raw intervals only (calibrated queries get `400`).
    pub calibration: Option<PathBuf>,
    /// Streaming SPC monitor configuration; `None` disables the
    /// monitor routes and the per-ingest chart scoring.
    pub monitor: Option<crate::monitor::MonitorConfig>,
    /// Suppress per-request log lines.
    pub quiet: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            data_dir: None,
            workers: 0,
            flush_interval: Some(Duration::from_millis(500)),
            fit: FitSettings::default(),
            queue_capacity: 1024,
            max_cached_fits: 0,
            retry_after_secs: 1,
            durability: DurabilityPolicy::default(),
            calibration: None,
            monitor: None,
            quiet: false,
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    flush_interval: Option<Duration>,
    queue_capacity: usize,
}

impl Server {
    /// Binds the listener and replays any durable project logs found in
    /// the data directory. The server does not accept until [`run`] or
    /// [`spawn`].
    ///
    /// [`run`]: Server::run
    /// [`spawn`]: Server::spawn
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let invalid = |e: crate::registry::RegistryError| {
            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
        };
        let registry = match config.data_dir.as_deref() {
            None => Registry::open(None).map_err(invalid)?,
            Some(dir) => {
                let storage = crate::storage::FsStorage::open(dir)?;
                Registry::open_with(Arc::new(storage), config.durability).map_err(invalid)?
            }
        };
        // A corrupt dictionary must fail the boot, not the first
        // calibrated query: the served factors are a correctness
        // artifact, so "loaded" has to mean "validated".
        let calibration = match config.calibration.as_deref() {
            None => None,
            Some(path) => {
                let text = std::fs::read_to_string(path)?;
                let dict = CalibrationDictionary::parse(&text).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("calibration dictionary {}: {e}", path.display()),
                    )
                })?;
                Some(Arc::new(dict))
            }
        };
        // Chart journals recover against the registry's acknowledged
        // prefix, so the monitor is built after replay completes.
        let monitor = match config.monitor {
            None => None,
            Some(mc) => Some(Arc::new(crate::monitor::Monitor::recover(mc, &registry)?)),
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            nhpp_numeric::parallel::auto_threads()
        } else {
            config.workers
        }
        .max(1);
        Ok(Server {
            listener,
            addr,
            state: Arc::new(AppState {
                registry,
                metrics: Metrics::new(),
                fit: config.fit,
                cache: FitCache::new(config.max_cached_fits),
                retry_after_secs: config.retry_after_secs,
                calibration,
                monitor,
                quiet: config.quiet,
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
            workers,
            flush_interval: config.flush_interval,
            queue_capacity: config.queue_capacity,
        })
    }

    /// The bound address (useful when the config asked for port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process introspection.
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Runs the acceptor and request workers and blocks until shutdown
    /// is signalled, then drains admitted connections and takes a final
    /// snapshot of every durable project.
    pub fn run(self) -> io::Result<()> {
        let flush_thread = self.flush_interval.map(|interval| {
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || flush_loop(&state, &shutdown, interval))
        });

        let queue = Arc::new(WorkQueue::new(self.queue_capacity));
        let acceptor = {
            let listener = self.listener.try_clone()?;
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&self.shutdown);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || accept_loop(&listener, &state, &shutdown, &queue))
        };

        let worker_ids: Vec<usize> = (0..self.workers).collect();
        let state = &self.state;
        nhpp_numeric::parallel::map_items(self.workers, &worker_ids, |_, _| {
            // Graceful drain: `pop` keeps yielding admitted connections
            // after close, and returns `None` only once the queue is
            // closed *and* empty.
            while let Some(stream) = queue.pop() {
                handle_connection(stream, state);
            }
        });

        let _ = acceptor.join();
        if let Some(handle) = flush_thread {
            let _ = handle.join();
        }
        // Final crash-consistent snapshot: the next start replays
        // snapshot-plus-nothing instead of the whole log.
        self.state.registry.snapshot_all();
        Ok(())
    }

    /// Starts the server on a background thread and returns a handle
    /// that can query its state and shut it down.
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.addr;
        let state = server.state();
        let shutdown = Arc::clone(&server.shutdown);
        let join = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            addr,
            state,
            shutdown,
            join: Some(join),
        })
    }
}

/// Handle to a spawned server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process assertions (tests, benches).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Signals shutdown, wakes every blocked `accept`, and joins the
    /// server thread.
    pub fn shutdown(mut self) {
        self.signal();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    fn signal(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // One wake-up connection: only the acceptor is parked in
        // `accept`; workers are woken by the queue close that follows.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.signal();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn flush_loop(state: &AppState, shutdown: &AtomicBool, interval: Duration) {
    // Sleep in short slices so shutdown never waits a full interval.
    let slice = interval.min(Duration::from_millis(50));
    let mut elapsed = Duration::ZERO;
    loop {
        std::thread::sleep(slice);
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        elapsed += slice;
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;
        flush_stale(&state.registry, &state.fit, &state.metrics);
    }
}

/// Bounded handoff between the acceptor and the request workers: the
/// admission-control point of the overload story.
struct WorkQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl WorkQueue {
    fn new(capacity: usize) -> WorkQueue {
        WorkQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits a connection, or hands it straight back when the queue is
    /// full or closed — the caller sheds it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed || (self.capacity != 0 && state.items.len() >= self.capacity) {
            return Err(stream);
        }
        state.items.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next admitted connection; `None` once the queue
    /// is closed *and* drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(stream) = state.items.pop_front() {
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue poisoned");
        }
    }

    /// Stops admission; workers drain what was already admitted.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &AppState,
    shutdown: &AtomicBool,
    queue: &WorkQueue,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Err(stream) = queue.push(stream) {
                    shed(stream, state);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failure (e.g. fd pressure): back off
                // briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    queue.close();
}

/// Admission control: answer a connection the queue could not take with
/// an immediate `503` + `Retry-After`, without tying up a worker or
/// parsing the request.
fn shed(mut stream: TcpStream, state: &AppState) {
    state.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let response = Response::json(
        503,
        "{\"error\": \"server overloaded, request shed\"}".to_string(),
    )
    .with_retry_after(state.retry_after_secs);
    if response.write_to(&mut stream).is_ok() {
        // Closing with unread request bytes in the receive buffer turns
        // the close into an RST, which can destroy the in-flight 503 on
        // the client side. Send our FIN, then drain what the client
        // sends — bounded in bytes and time so a slow writer cannot
        // hold the acceptor hostage.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut sink = [0u8; 4096];
        let mut drained = 0usize;
        while drained < 64 * 1024 && Instant::now() < deadline {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
    }
    state.metrics.observe_request(503, Duration::ZERO);
}

fn handle_connection(stream: TcpStream, state: &AppState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "-".to_string());
    let mut reader = BufReader::new(stream);
    let started = Instant::now();
    let (request, response) = match read_request(&mut reader) {
        Ok(req) => {
            let resp = routes::handle(state, &req);
            (Some(req), resp)
        }
        Err(err) => (
            None,
            Response::json(
                400,
                format!("{{\"error\": \"malformed request: {err}\"}}"),
            ),
        ),
    };
    let elapsed = started.elapsed();
    state.metrics.observe_request(response.status, elapsed);
    if !state.quiet {
        let (method, path) = request
            .as_ref()
            .map(|r| (r.method.as_str(), r.path.as_str()))
            .unwrap_or(("-", "-"));
        eprintln!(
            "nhpp-serve peer={peer} method={method} path={path} status={} bytes={} ms={:.3}",
            response.status,
            response.body.len(),
            elapsed.as_secs_f64() * 1000.0,
        );
    }
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_request;
    use nhpp_data::sys17;

    fn quiet_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            flush_interval: None,
            quiet: true,
            ..ServerConfig::default()
        }
    }

    fn sys17_batch() -> String {
        let mut text = format!("# t_end={}\n", sys17::T_END);
        for t in sys17::FAILURE_TIMES {
            text.push_str(&format!("{t}\n"));
        }
        text
    }

    #[test]
    fn work_queue_bounds_admission_and_drains_after_close() {
        let queue = WorkQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _c1 = TcpStream::connect(addr).unwrap();
        let _c2 = TcpStream::connect(addr).unwrap();
        let _c3 = TcpStream::connect(addr).unwrap();
        let (s1, _) = listener.accept().unwrap();
        let (s2, _) = listener.accept().unwrap();
        let (s3, _) = listener.accept().unwrap();

        assert!(queue.push(s1).is_ok(), "first admission fits");
        let rejected = queue.push(s2);
        assert!(rejected.is_err(), "capacity 1 sheds the second");
        assert_eq!(queue.len(), 1);

        // Close stops admission but the admitted connection drains.
        queue.close();
        assert!(queue.push(s3).is_err(), "closed queue admits nothing");
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none(), "closed and drained");
    }

    #[test]
    fn shed_answers_503_with_retry_after() {
        let state = AppState {
            registry: Registry::open(None).unwrap(),
            metrics: Metrics::new(),
            fit: FitSettings::default(),
            cache: FitCache::new(0),
            retry_after_secs: 3,
            calibration: None,
            monitor: None,
            quiet: true,
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            use std::io::Read as _;
            stream.read_to_string(&mut text).unwrap();
            text
        });
        let (server_side, _) = listener.accept().unwrap();
        shed(server_side, &state);
        let text = client.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        assert_eq!(state.metrics.requests_shed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn graceful_shutdown_snapshots_durable_projects() {
        let dir = std::env::temp_dir().join(format!("nhpp-serve-shutdown-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = quiet_config();
        config.data_dir = Some(dir.clone());
        let handle = Server::spawn(config).unwrap();
        let addr = handle.addr().to_string();
        client_request(
            &addr,
            "PUT",
            "/projects/p?kind=times&model=go&prior=paper-info-times",
            None,
        )
        .unwrap();
        client_request(&addr, "POST", "/projects/p/events", Some(&sys17_batch())).unwrap();
        handle.shutdown();

        assert!(dir.join("p.snap").exists(), "shutdown snapshot missing");
        // The next start replays snapshot-plus-nothing.
        let registry = Registry::open(Some(&dir)).unwrap();
        let project = registry.get("p").unwrap();
        assert_eq!(project.version(), 1);
        assert_eq!(
            registry.stats().snapshots_loaded.load(Ordering::Relaxed),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spawned_server_answers_over_real_tcp_and_shuts_down() {
        let handle = Server::spawn(quiet_config()).unwrap();
        let addr = handle.addr().to_string();

        let (status, body) = client_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ok\""));

        let (status, _) = client_request(
            &addr,
            "PUT",
            "/projects/sys17?kind=times&model=go&prior=paper-info-times",
            None,
        )
        .unwrap();
        assert_eq!(status, 201);

        let batch = sys17_batch();
        let (status, body) =
            client_request(&addr, "POST", "/projects/sys17/events", Some(&batch)).unwrap();
        assert_eq!(status, 200, "{body}");

        let (status, body) = client_request(&addr, "GET", "/projects/sys17/fit", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"provenance\": \"vb2\""), "{body}");

        let (status, body) = client_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            crate::metrics::scrape_counter(&body, "nhpp_serve_fits_total"),
            Some(1),
            "{body}"
        );

        handle.shutdown();
    }

    #[test]
    fn flush_tick_refits_in_background() {
        let mut config = quiet_config();
        config.flush_interval = Some(Duration::from_millis(60));
        let handle = Server::spawn(config).unwrap();
        let addr = handle.addr().to_string();

        client_request(
            &addr,
            "PUT",
            "/projects/p?kind=times&model=go&prior=paper-info-times",
            None,
        )
        .unwrap();
        client_request(&addr, "POST", "/projects/p/events", Some(&sys17_batch())).unwrap();

        // Wait for a tick to fit the stale project without any query.
        let state = handle.state();
        let deadline = Instant::now() + Duration::from_secs(10);
        while state
            .metrics
            .fits_total
            .load(std::sync::atomic::Ordering::Relaxed)
            == 0
        {
            assert!(Instant::now() < deadline, "flush tick never fitted");
            std::thread::sleep(Duration::from_millis(20));
        }

        // The query is now a pure cache hit.
        let (status, _) = client_request(&addr, "GET", "/projects/p/fit", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            state
                .metrics
                .fits_total
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        handle.shutdown();
    }
}
