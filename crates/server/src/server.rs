//! The long-running service: a `std::net::TcpListener` accept loop
//! fanned out over the existing [`nhpp_numeric::parallel`] worker pool.
//!
//! There is deliberately no async runtime here. The service's unit of
//! work is a *fit* — milliseconds of dense floating-point arithmetic —
//! not a high-fanout I/O wait, so blocking threads over cloned listener
//! file descriptors are the simplest correct model: the kernel load-
//! balances `accept(2)` across workers, and a slow fit occupies exactly
//! one worker without starving the others. Shutdown is cooperative: a
//! shared flag plus one self-connect per worker to unblock `accept`.

use crate::http::{read_request, Response};
use crate::metrics::Metrics;
use crate::registry::Registry;
use crate::routes;
use crate::scheduler::{flush_stale, FitSettings};
use std::io::{self, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything the route handlers can see. One instance, shared by all
/// workers and the flush thread.
pub struct AppState {
    /// Project registry (durable if the server was given a data dir).
    pub registry: Registry,
    /// Service counters.
    pub metrics: Metrics,
    /// Options + thread budget applied to every supervised fit.
    pub fit: FitSettings,
    /// Suppress per-request log lines.
    pub quiet: bool,
}

/// Server construction parameters.
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port `0` picks a free port.
    pub addr: String,
    /// Directory for durable project logs; `None` keeps state in memory.
    pub data_dir: Option<PathBuf>,
    /// Accept workers; `0` means [`nhpp_numeric::parallel::auto_threads`].
    pub workers: usize,
    /// Period of the background flush tick that batch-refits stale
    /// projects; `None` disables it (queries still refit on demand).
    pub flush_interval: Option<Duration>,
    /// Fit options and per-fit thread budget.
    pub fit: FitSettings,
    /// Suppress per-request log lines.
    pub quiet: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            data_dir: None,
            workers: 0,
            flush_interval: Some(Duration::from_millis(500)),
            fit: FitSettings::default(),
            quiet: false,
        }
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    flush_interval: Option<Duration>,
}

impl Server {
    /// Binds the listener and replays any durable project logs found in
    /// the data directory. The server does not accept until [`run`] or
    /// [`spawn`].
    ///
    /// [`run`]: Server::run
    /// [`spawn`]: Server::spawn
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let registry = Registry::open(config.data_dir.as_deref())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            nhpp_numeric::parallel::auto_threads()
        } else {
            config.workers
        }
        .max(1);
        Ok(Server {
            listener,
            addr,
            state: Arc::new(AppState {
                registry,
                metrics: Metrics::new(),
                fit: config.fit,
                quiet: config.quiet,
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
            workers,
            flush_interval: config.flush_interval,
        })
    }

    /// The bound address (useful when the config asked for port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process introspection.
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept workers on the calling thread's pool and blocks
    /// until shutdown is signalled.
    pub fn run(self) -> io::Result<()> {
        let flush_thread = self.flush_interval.map(|interval| {
            let state = Arc::clone(&self.state);
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || flush_loop(&state, &shutdown, interval))
        });

        let worker_ids: Vec<usize> = (0..self.workers).collect();
        let state = &self.state;
        let shutdown = &self.shutdown;
        let listener = &self.listener;
        nhpp_numeric::parallel::map_items(self.workers, &worker_ids, |_, _| {
            let listener = match listener.try_clone() {
                Ok(l) => l,
                Err(_) => return,
            };
            accept_loop(&listener, state, shutdown);
        });

        if let Some(handle) = flush_thread {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Starts the server on a background thread and returns a handle
    /// that can query its state and shut it down.
    pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.addr;
        let state = server.state();
        let shutdown = Arc::clone(&server.shutdown);
        let workers = server.workers;
        let join = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            addr,
            state,
            shutdown,
            workers,
            join: Some(join),
        })
    }
}

/// Handle to a spawned server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    join: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process assertions (tests, benches).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Signals shutdown, wakes every blocked `accept`, and joins the
    /// server thread.
    pub fn shutdown(mut self) {
        self.signal();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    fn signal(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // One wake-up connection per worker: each is parked in
        // `accept`, and the kernel hands each connect to exactly one.
        for _ in 0..self.workers {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.signal();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn flush_loop(state: &AppState, shutdown: &AtomicBool, interval: Duration) {
    // Sleep in short slices so shutdown never waits a full interval.
    let slice = interval.min(Duration::from_millis(50));
    let mut elapsed = Duration::ZERO;
    loop {
        std::thread::sleep(slice);
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        elapsed += slice;
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;
        flush_stale(&state.registry, &state.fit, &state.metrics);
    }
}

fn accept_loop(listener: &TcpListener, state: &AppState, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                handle_connection(stream, state);
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failure (e.g. fd pressure): back off
                // briefly instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(stream: TcpStream, state: &AppState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "-".to_string());
    let mut reader = BufReader::new(stream);
    let started = Instant::now();
    let (request, response) = match read_request(&mut reader) {
        Ok(req) => {
            let resp = routes::handle(state, &req);
            (Some(req), resp)
        }
        Err(err) => (
            None,
            Response::json(
                400,
                format!("{{\"error\": \"malformed request: {err}\"}}"),
            ),
        ),
    };
    let elapsed = started.elapsed();
    state.metrics.observe_request(response.status, elapsed);
    if !state.quiet {
        let (method, path) = request
            .as_ref()
            .map(|r| (r.method.as_str(), r.path.as_str()))
            .unwrap_or(("-", "-"));
        eprintln!(
            "nhpp-serve peer={peer} method={method} path={path} status={} bytes={} ms={:.3}",
            response.status,
            response.body.len(),
            elapsed.as_secs_f64() * 1000.0,
        );
    }
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_request;
    use nhpp_data::sys17;

    fn quiet_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            flush_interval: None,
            quiet: true,
            ..ServerConfig::default()
        }
    }

    fn sys17_batch() -> String {
        let mut text = format!("# t_end={}\n", sys17::T_END);
        for t in sys17::FAILURE_TIMES {
            text.push_str(&format!("{t}\n"));
        }
        text
    }

    #[test]
    fn spawned_server_answers_over_real_tcp_and_shuts_down() {
        let handle = Server::spawn(quiet_config()).unwrap();
        let addr = handle.addr().to_string();

        let (status, body) = client_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"ok\""));

        let (status, _) = client_request(
            &addr,
            "PUT",
            "/projects/sys17?kind=times&model=go&prior=paper-info-times",
            None,
        )
        .unwrap();
        assert_eq!(status, 201);

        let batch = sys17_batch();
        let (status, body) =
            client_request(&addr, "POST", "/projects/sys17/events", Some(&batch)).unwrap();
        assert_eq!(status, 200, "{body}");

        let (status, body) = client_request(&addr, "GET", "/projects/sys17/fit", None).unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"provenance\": \"vb2\""), "{body}");

        let (status, body) = client_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            crate::metrics::scrape_counter(&body, "nhpp_serve_fits_total"),
            Some(1),
            "{body}"
        );

        handle.shutdown();
    }

    #[test]
    fn flush_tick_refits_in_background() {
        let mut config = quiet_config();
        config.flush_interval = Some(Duration::from_millis(60));
        let handle = Server::spawn(config).unwrap();
        let addr = handle.addr().to_string();

        client_request(
            &addr,
            "PUT",
            "/projects/p?kind=times&model=go&prior=paper-info-times",
            None,
        )
        .unwrap();
        client_request(&addr, "POST", "/projects/p/events", Some(&sys17_batch())).unwrap();

        // Wait for a tick to fit the stale project without any query.
        let state = handle.state();
        let deadline = Instant::now() + Duration::from_secs(10);
        while state
            .metrics
            .fits_total
            .load(std::sync::atomic::Ordering::Relaxed)
            == 0
        {
            assert!(Instant::now() < deadline, "flush tick never fitted");
            std::thread::sleep(Duration::from_millis(20));
        }

        // The query is now a pure cache hit.
        let (status, _) = client_request(&addr, "GET", "/projects/p/fit", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            state
                .metrics
                .fits_total
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        handle.shutdown();
    }
}
