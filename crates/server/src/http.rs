//! A deliberately minimal HTTP/1.1 layer: exactly what the service and
//! its test/bench clients need, nothing more.
//!
//! One request per connection (`Connection: close`), bodies sized by
//! `Content-Length` only, query strings as flat `key=value` pairs.
//! No percent-decoding: project identifiers are restricted to
//! `[A-Za-z0-9._-]` and every parameter the API takes is numeric or an
//! enum keyword, so nothing in the grammar needs escaping.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on accepted request bodies (1 MiB): the largest
/// legitimate payload is an event batch of a few thousand CSV lines.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `PUT`, …).
    pub method: String,
    /// Path without the query string, e.g. `/projects/sys17/fit`.
    pub path: String,
    /// Query parameters in order-independent form.
    pub query: BTreeMap<String, String>,
    /// Raw request body (UTF-8 expected by every route that reads it).
    pub body: Vec<u8>,
}

impl Request {
    /// A query parameter, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// The `/`-separated path segments, empties dropped.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// An HTTP response ready to serialise.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Seconds to send in a `Retry-After` header, for 503 shed/overload
    /// responses.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body,
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` header (seconds).
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u32) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialises the response (status line, headers, body) to `w`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(seconds) = self.retry_after {
            write!(w, "Retry-After: {seconds}\r\n")?;
        }
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Parses one request from a buffered stream.
///
/// # Errors
///
/// `InvalidData` on a malformed request line, header or oversized body;
/// plain I/O errors (including timeouts) pass through.
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Request> {
    let mut line = String::new();
    r.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => return Err(bad("malformed request line")),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad("malformed header"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| bad("bad content-length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.clone(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_text.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

/// Blocking one-shot client used by the CLI client, the load generator
/// and the end-to-end tests: connects, sends one request, returns
/// `(status, body)`.
///
/// # Errors
///
/// Connection or protocol failures as `io::Error`.
pub fn client_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let (status, _, body) = client_request_full(addr, method, path_and_query, body)?;
    Ok((status, body))
}

/// Like [`client_request`] but also returns the parsed `Retry-After`
/// header (seconds), which shed/overload responses carry.
///
/// # Errors
///
/// Connection or protocol failures as `io::Error`.
pub fn client_request_full(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
) -> io::Result<(u16, Option<u32>, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(60)))?;
    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = None;
    let mut retry_after = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            // Numeric headers are normalised (surrounding whitespace
            // stripped) and then parsed strictly: a present-but-garbled
            // value is a protocol error, not an absent header. Treating
            // it as absent would make the client read to EOF on a bad
            // Content-Length and ignore the server's shed interval on a
            // bad Retry-After — both silent misbehaviours.
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| bad("malformed Content-Length in response"))?,
                );
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = Some(
                    value
                        .trim()
                        .parse::<u32>()
                        .map_err(|_| bad("malformed Retry-After in response"))?,
                );
            }
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf).map_err(|_| bad("non-UTF-8 body"))?;
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok((status, retry_after, body))
}

/// [`client_request`] with shed-aware retries: on a 503 the client
/// sleeps for the server's `Retry-After` interval (capped at
/// `max_wait` per wait, defaulting to one second when the header is
/// absent) and reissues the request, up to `max_retries` additional
/// attempts. Cumulative sleeping is further capped at `deadline`: a
/// long shed sequence shortens its final wait to land exactly on the
/// budget, and once the budget is spent the current 503 is returned
/// instead of sleeping again — the client never overshoots the
/// caller's deadline, no matter what intervals the server advertises.
/// Any other status — success or error — is returned immediately; the
/// caller still decides what non-2xx means.
///
/// # Errors
///
/// Connection or protocol failures as `io::Error`.
pub fn client_request_with_backoff(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&str>,
    max_retries: u32,
    max_wait: std::time::Duration,
    deadline: std::time::Duration,
) -> io::Result<(u16, String)> {
    let mut attempt = 0u32;
    let mut slept = std::time::Duration::ZERO;
    loop {
        let (status, retry_after, text) = client_request_full(addr, method, path_and_query, body)?;
        if status != 503 || attempt >= max_retries {
            return Ok((status, text));
        }
        let wait = std::time::Duration::from_secs(u64::from(retry_after.unwrap_or(1)))
            .min(max_wait)
            .min(deadline.saturating_sub(slept));
        if wait.is_zero() && slept >= deadline {
            // The cumulative backoff budget is spent: surface the shed
            // response rather than stall past the caller's deadline.
            return Ok((status, text));
        }
        std::thread::sleep(wait);
        slept += wait;
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_query_and_body() {
        let raw = "POST /projects/p1/events?level=0.99&param=omega HTTP/1.1\r\n\
                   Host: x\r\nContent-Length: 9\r\n\r\n# t_end=1";
        let req = read_request(&mut raw.as_bytes()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/projects/p1/events");
        assert_eq!(req.param("level"), Some("0.99"));
        assert_eq!(req.param("param"), Some("omega"));
        assert_eq!(req.segments(), vec!["projects", "p1", "events"]);
        assert_eq!(req.body, b"# t_end=1");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(read_request(&mut "\r\n\r\n".as_bytes()).is_err());
        assert!(read_request(&mut "GET\r\n\r\n".as_bytes()).is_err());
        let oversized = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(read_request(&mut oversized.as_bytes()).is_err());
    }

    #[test]
    fn response_serialises_with_content_length() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(!text.contains("Retry-After"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn shed_response_carries_retry_after() {
        let mut buf = Vec::new();
        Response::json(503, "{\"error\":\"overloaded\"}".into())
            .with_retry_after(2)
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
    }

    /// Serves each canned raw response to one connection, in order,
    /// reading (and discarding) the request first. Returns the bound
    /// address and a handle yielding the number of connections served.
    fn serve_raw(responses: Vec<Vec<u8>>) -> (String, std::thread::JoinHandle<usize>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut served = 0usize;
            for raw in responses {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let _ = read_request(&mut reader);
                stream.write_all(&raw).unwrap();
                served += 1;
            }
            served
        });
        (addr, handle)
    }

    #[test]
    fn client_rejects_malformed_numeric_headers() {
        for raw in [
            "HTTP/1.1 200 OK\r\nContent-Length: many\r\n\r\n",
            "HTTP/1.1 200 OK\r\nContent-Length: 12 bytes\r\n\r\n",
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nRetry-After: soon\r\n\r\n",
        ] {
            let (addr, handle) = serve_raw(vec![raw.as_bytes().to_vec()]);
            let err = client_request(&addr, "GET", "/", None).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}: {err}");
            handle.join().unwrap();
        }
    }

    #[test]
    fn client_normalises_whitespace_padded_numeric_headers() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\n\
                   Content-Length:   2  \r\nRetry-After:\t7 \r\n\r\nhi";
        let (addr, handle) = serve_raw(vec![raw.as_bytes().to_vec()]);
        let (status, retry_after, body) = client_request_full(&addr, "GET", "/", None).unwrap();
        assert_eq!((status, retry_after, body.as_str()), (503, Some(7), "hi"));
        handle.join().unwrap();
    }

    /// A shed 503's `Retry-After` — serialised by the server's own
    /// `Response` type — round-trips through the client backoff: the
    /// client sleeps for the advertised interval (clamped to its cap)
    /// and the retry lands the 200.
    #[test]
    fn shed_retry_after_round_trips_through_backoff() {
        let mut shed = Vec::new();
        Response::json(503, "{\"error\":\"overloaded\"}".into())
            .with_retry_after(1)
            .write_to(&mut shed)
            .unwrap();
        let mut ok = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut ok)
            .unwrap();
        let (addr, handle) = serve_raw(vec![shed, ok]);
        let cap = std::time::Duration::from_millis(40);
        let deadline = std::time::Duration::from_millis(500);
        let started = std::time::Instant::now();
        let (status, body) =
            client_request_with_backoff(&addr, "GET", "/projects/p/fit", None, 3, cap, deadline)
                .unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\":true"), "{body}");
        // The advertised 1 s interval was honoured but clamped to the cap.
        let elapsed = started.elapsed();
        assert!(elapsed >= cap, "slept only {elapsed:?}");
        assert!(elapsed < std::time::Duration::from_secs(1), "{elapsed:?}");
        assert_eq!(handle.join().unwrap(), 2);
    }

    #[test]
    fn backoff_gives_up_after_max_retries() {
        let mut shed = Vec::new();
        Response::json(503, "{\"error\":\"overloaded\"}".into())
            .with_retry_after(0)
            .write_to(&mut shed)
            .unwrap();
        let (addr, handle) = serve_raw(vec![shed.clone(), shed.clone(), shed]);
        let cap = std::time::Duration::from_millis(10);
        let deadline = std::time::Duration::from_millis(100);
        let (status, body) =
            client_request_with_backoff(&addr, "GET", "/", None, 2, cap, deadline).unwrap();
        assert_eq!(status, 503);
        assert!(body.contains("overloaded"), "{body}");
        assert_eq!(handle.join().unwrap(), 3);
    }

    /// A server shedding with long `Retry-After` intervals cannot make
    /// the client sleep past its cumulative deadline: the waits shrink
    /// to fit the remaining budget and, once it is spent, the shed
    /// response comes back immediately even with retries left.
    #[test]
    fn backoff_caps_cumulative_sleeps_at_the_deadline() {
        let mut shed = Vec::new();
        Response::json(503, "{\"error\":\"overloaded\"}".into())
            .with_retry_after(60)
            .write_to(&mut shed)
            .unwrap();
        // Far more sheds queued than the deadline allows sleeps for.
        let (addr, handle) = serve_raw(vec![shed.clone(), shed.clone(), shed.clone(), shed]);
        let per_wait = std::time::Duration::from_millis(30);
        let deadline = std::time::Duration::from_millis(75);
        let started = std::time::Instant::now();
        let (status, body) =
            client_request_with_backoff(&addr, "GET", "/projects/p/fit", None, 10, per_wait, deadline)
                .unwrap();
        let elapsed = started.elapsed();
        assert_eq!(status, 503);
        assert!(body.contains("overloaded"), "{body}");
        // Three sleeps fit the 75 ms budget (30 + 30 + 15); the fourth
        // shed returns without sleeping, with six retries still unused.
        assert_eq!(handle.join().unwrap(), 4);
        assert!(elapsed >= deadline, "slept only {elapsed:?}");
        assert!(
            elapsed < deadline + std::time::Duration::from_secs(1),
            "overshot the deadline: {elapsed:?}"
        );
    }
}
