//! The fit scheduler: a per-project posterior cache with request
//! coalescing, warm-started refits, and a batch flush path.
//!
//! # Coalescing
//!
//! Every project carries a [`FitSlot`] (guarded by a mutex + condvar on
//! the project). A query needing the posterior calls [`ensure_fit`]:
//!
//! * cache hit — the slot already holds a result for the current data
//!   version: return it, no work;
//! * join — a fit for that version (or any other) is in flight: wait on
//!   the condvar and return the result the fitting thread publishes.
//!   Joining an identical-version fit is counted as a *coalesce*: of N
//!   concurrent queries against a stale posterior, exactly one runs the
//!   cascade and N−1 piggyback;
//! * claim — otherwise mark the version in flight, drop the lock, run
//!   [`nhpp_vb::fit_supervised_warm`] (warm-started from the previous
//!   cached posterior's `ξ` table when one exists), publish, notify.
//!
//! Failures are cached too, keyed by the same version: a dataset whose
//! fit just failed is not re-fit on every poll, only after new data
//! arrives. The [`FitFailure`] keeps its report, so error responses can
//! state budget exhaustion and the tier reached.
//!
//! # Flush tick
//!
//! [`flush_stale`] batch-refits every stale idle project through one
//! [`nhpp_vb::fit_many_supervised_warm`] pool — the background path that
//! keeps posteriors warm between queries when events stream in faster
//! than anyone asks questions.

use crate::metrics::Metrics;
use crate::registry::{Project, Registry, RegistryError};
use nhpp_vb::robust::{RobustTask, WarmRobustTask};
use nhpp_vb::{
    fit_many_supervised_warm, fit_supervised_warm, FitFailure, RobustFit, RobustOptions,
    RobustPosterior, Truncation, Vb2WarmStart,
};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Fit execution settings shared by the query and flush paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct FitSettings {
    /// Supervised-pipeline options (retry ladder, fallback policy).
    pub options: RobustOptions,
    /// Worker threads for batch refits (`0` = available parallelism).
    pub threads: usize,
    /// Per-request fit deadline: threaded into the cascade as
    /// [`RobustOptions::total_deadline`] and bounding how long a query
    /// waits on someone else's in-flight fit. `None` = unbounded.
    pub deadline: Option<Duration>,
}

/// A cached successful fit.
#[derive(Debug)]
pub struct CachedFit {
    /// Data version the fit was computed at.
    pub version: u64,
    /// The supervised fit (posterior + provenance report).
    pub fit: RobustFit,
    /// Warm-start table extracted from the posterior (VB2 only), used
    /// to seed the *next* refit.
    pub warm: Option<Vb2WarmStart>,
    /// Whether this fit itself was warm-started.
    pub warm_started: bool,
}

/// Shared outcome of a fit, recorded per data version.
pub type FitOutcome = Result<Arc<CachedFit>, Arc<FitFailure>>;

/// Per-project fit cache and in-flight marker.
#[derive(Debug, Default)]
pub struct FitSlot {
    /// The most recent outcome and the version it belongs to.
    pub last: Option<(u64, FitOutcome)>,
    /// Data version currently being fit, if any.
    pub in_flight: Option<u64>,
    /// Version whose posterior the LRU evicted: the flush tick must not
    /// resurrect it (that would defeat the memory bound), but a direct
    /// query refits on demand.
    pub evicted: Option<u64>,
}

impl FitSlot {
    /// The warm-start table of the last successful fit, if any.
    fn warm_table(&self) -> Option<Vb2WarmStart> {
        match &self.last {
            Some((_, Ok(cached))) => cached.warm.clone(),
            _ => None,
        }
    }
}

/// Errors from [`ensure_fit`].
#[derive(Debug)]
pub enum FitServeError {
    /// The project data could not be snapshotted (no data yet, or an
    /// internal invariant failure).
    Registry(RegistryError),
    /// The supervised cascade failed; the report travels along.
    Fit(Arc<FitFailure>),
    /// The request's fit deadline passed while waiting on someone
    /// else's in-flight fit (HTTP 503 + `Retry-After`).
    DeadlineExceeded,
}

/// Per-project option tuning: a flat prior makes the exact posterior
/// over the latent total N improper, so adaptive truncation must be
/// capped relative to the observed count (the same policy as the batch
/// CLI) or the first fit of a flat-prior project crawls through an
/// enormous component sweep.
fn tuned_options(
    settings: &FitSettings,
    prior: &nhpp_models::prior::NhppPrior,
    data: &nhpp_data::ObservedData,
) -> RobustOptions {
    let mut options = settings.options;
    options.total_deadline = settings.deadline;
    if prior.omega.is_flat() || prior.beta.is_flat() {
        options.base.truncation = Truncation::AdaptiveCapped {
            epsilon: 5e-15,
            cap: (5 * data.total_count() as u64).max(100),
        };
    }
    options
}

/// Builds the cache entry for a finished fit and updates fit metrics.
fn publish_outcome(
    version: u64,
    result: Result<RobustFit, FitFailure>,
    warm_started: bool,
    metrics: &Metrics,
) -> FitOutcome {
    metrics.fits_total.fetch_add(1, Ordering::Relaxed);
    if warm_started {
        metrics.fits_warm.fetch_add(1, Ordering::Relaxed);
    }
    match result {
        Ok(fit) => {
            if fit.report.budget_exhausted() {
                metrics.budget_exhaustions.fetch_add(1, Ordering::Relaxed);
            }
            if fit.report.fallback_tier().is_some() {
                metrics.fallback_fits.fetch_add(1, Ordering::Relaxed);
            }
            let (warm, iterations) = match &fit.posterior {
                RobustPosterior::Vb2(p) => {
                    (Some(p.warm_start()), p.inner_iterations() as u64)
                }
                _ => (None, 0),
            };
            metrics
                .refit_inner_iterations
                .fetch_add(iterations, Ordering::Relaxed);
            Ok(Arc::new(CachedFit {
                version,
                fit,
                warm,
                warm_started,
            }))
        }
        Err(failure) => {
            metrics.fit_errors.fetch_add(1, Ordering::Relaxed);
            if failure.report.budget_exhausted() {
                metrics.budget_exhaustions.fetch_add(1, Ordering::Relaxed);
            }
            Err(Arc::new(failure))
        }
    }
}

/// Returns the posterior for the project's *current* data version,
/// fitting at most once per version across any number of concurrent
/// callers (see the module docs). When [`FitSettings::deadline`] is
/// set it bounds both the cascade itself and the time spent waiting on
/// an in-flight fit.
///
/// # Errors
///
/// [`FitServeError`] — no data yet, the cascade failed, or the
/// deadline passed while waiting.
pub fn ensure_fit(
    project: &Project,
    settings: &FitSettings,
    metrics: &Metrics,
) -> Result<Arc<CachedFit>, FitServeError> {
    let (version, data, spec, prior) = project.snapshot().map_err(FitServeError::Registry)?;
    let deadline_at = settings.deadline.map(|d| Instant::now() + d);

    let mut slot = project.fit.lock().expect("fit slot poisoned");
    // A caller is counted once: as a cache hit *or* as a coalesced
    // join, never both. Without the flag, a waiter that joined an
    // in-flight fit would re-enter the loop after waking and also take
    // the cache-hit branch, double-counting itself.
    let mut coalesced = false;
    let warm = loop {
        if let Some((v, outcome)) = &slot.last {
            if *v == version {
                if outcome.is_ok() && !coalesced {
                    metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                return outcome.clone().map_err(FitServeError::Fit);
            }
        }
        match slot.in_flight {
            Some(v) => {
                if v == version && !coalesced {
                    coalesced = true;
                    metrics.fits_coalesced.fetch_add(1, Ordering::Relaxed);
                }
                slot = match deadline_at {
                    None => project.fit_ready.wait(slot).expect("fit slot poisoned"),
                    Some(at) => {
                        let remaining = at.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            return Err(FitServeError::DeadlineExceeded);
                        }
                        let (slot, timeout) = project
                            .fit_ready
                            .wait_timeout(slot, remaining)
                            .expect("fit slot poisoned");
                        if timeout.timed_out() && slot.in_flight.is_some() {
                            return Err(FitServeError::DeadlineExceeded);
                        }
                        slot
                    }
                };
                // Re-check from the top: the finished fit may or may
                // not be for our version.
            }
            None => {
                slot.in_flight = Some(version);
                break slot.warm_table();
            }
        }
    };
    drop(slot);

    let mut options = tuned_options(settings, &prior, &data);
    options.base.threads = settings.threads;
    let warm_started = warm.is_some();
    let result = fit_supervised_warm(spec, prior, &data, options, warm.as_ref());
    let outcome = publish_outcome(version, result, warm_started, metrics);

    let mut slot = project.fit.lock().expect("fit slot poisoned");
    slot.in_flight = None;
    slot.last = Some((version, outcome.clone()));
    slot.evicted = None;
    project.fit_ready.notify_all();
    drop(slot);

    outcome.map_err(FitServeError::Fit)
}

/// A registry-wide LRU bound on *cached posteriors*: each project's
/// [`FitSlot`] holds at most one posterior, so bounding the number of
/// slots that hold one bounds the service's posterior memory. Queries
/// [`FitCache::touch`] their project after [`ensure_fit`]; once more
/// than `capacity` projects hold posteriors, the least recently touched
/// one is dropped (its slot keeps the evicted version so the flush tick
/// does not immediately resurrect it — only a direct query does).
#[derive(Debug)]
pub struct FitCache {
    capacity: usize,
    inner: Mutex<FitCacheState>,
}

#[derive(Debug, Default)]
struct FitCacheState {
    tick: u64,
    entries: BTreeMap<String, (u64, Weak<Project>)>,
}

impl FitCache {
    /// A cache evicting beyond `capacity` posteriors (`0` = unbounded).
    pub fn new(capacity: usize) -> FitCache {
        FitCache {
            capacity,
            inner: Mutex::new(FitCacheState::default()),
        }
    }

    /// Records a use of `project`'s posterior and evicts the least
    /// recently used ones while over capacity. A project whose fit is
    /// in flight is skipped (its memory is live on a fitting thread);
    /// it re-enters the cache on its next touch.
    pub fn touch(&self, project: &Arc<Project>, metrics: &Metrics) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("fit cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner
            .entries
            .insert(project.id().to_string(), (tick, Arc::downgrade(project)));
        while inner.entries.len() > self.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(id, (_, weak))| (id.clone(), weak.clone()))
                .expect("entries nonempty while over capacity");
            inner.entries.remove(&oldest.0);
            if let Some(project) = oldest.1.upgrade() {
                evict_posterior(&project, metrics);
            }
        }
    }

    /// Number of projects currently tracked as holding a posterior.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("fit cache poisoned").entries.len()
    }

    /// Whether the cache tracks no posteriors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Drops a project's cached posterior (LRU eviction). Returns whether
/// anything was evicted.
fn evict_posterior(project: &Project, metrics: &Metrics) -> bool {
    let mut slot = project.fit.lock().expect("fit slot poisoned");
    if slot.in_flight.is_some() {
        return false;
    }
    match slot.last.take() {
        Some((version, outcome)) => {
            if outcome.is_ok() {
                metrics.posteriors_evicted.fetch_add(1, Ordering::Relaxed);
            }
            slot.evicted = Some(version);
            true
        }
        None => false,
    }
}

/// The last successfully cached fit, at whatever version it was
/// computed, without ever fitting. Two callers use it: introspection
/// (`GET /projects/{id}`), and read paths that deliberately tolerate a
/// posterior a version behind — the SPC status check and the monitor's
/// per-event chart scoring, where the control limits are *supposed* to
/// come from the fit before the events under test (and a refit storm
/// per status poll would defeat the coalescing scheduler). Interval,
/// band and prediction queries still always go through [`ensure_fit`].
pub fn cached_fit(project: &Project) -> Option<Arc<CachedFit>> {
    let slot = project.fit.lock().expect("fit slot poisoned");
    match &slot.last {
        Some((_, Ok(cached))) => Some(cached.clone()),
        _ => None,
    }
}

/// One pass of the flush tick: claims every stale idle project, refits
/// them as a single [`fit_many_supervised_warm`] batch, publishes the
/// results, and wakes any waiters. Returns the number of refits run.
pub fn flush_stale(registry: &Registry, settings: &FitSettings, metrics: &Metrics) -> usize {
    metrics.flush_ticks.fetch_add(1, Ordering::Relaxed);

    // Claim phase: under each project's slot lock, mark the current
    // version in flight when the cache is stale and nothing is running.
    struct Claim {
        project: Arc<Project>,
        version: u64,
        data: nhpp_data::ObservedData,
        spec: nhpp_models::ModelSpec,
        prior: nhpp_models::prior::NhppPrior,
        warm: Option<Vb2WarmStart>,
    }
    let mut claims: Vec<Claim> = Vec::new();
    for project in registry.all() {
        let Ok((version, data, spec, prior)) = project.snapshot() else {
            continue;
        };
        let mut slot = project.fit.lock().expect("fit slot poisoned");
        if slot.in_flight.is_some() {
            continue;
        }
        if matches!(&slot.last, Some((v, _)) if *v == version) {
            continue;
        }
        if slot.evicted == Some(version) {
            // The LRU dropped this posterior to stay under the memory
            // bound; refitting it from the background tick would undo
            // the eviction. A direct query still refits on demand.
            continue;
        }
        slot.in_flight = Some(version);
        let warm = slot.warm_table();
        drop(slot);
        claims.push(Claim {
            project,
            version,
            data,
            spec,
            prior,
            warm,
        });
    }
    if claims.is_empty() {
        return 0;
    }

    // Fit phase: one pool over all claimed projects.
    let tasks: Vec<WarmRobustTask<'_>> = claims
        .iter()
        .map(|c| {
            let mut options = tuned_options(settings, &c.prior, &c.data);
            options.base.threads = 1;
            WarmRobustTask {
                task: RobustTask {
                    spec: c.spec,
                    prior: c.prior,
                    data: &c.data,
                    options,
                },
                warm: c.warm.as_ref(),
            }
        })
        .collect();
    let results = fit_many_supervised_warm(&tasks, settings.threads);

    // Publish phase.
    let refits = results.len();
    for (claim, result) in claims.into_iter().zip(results) {
        let outcome = publish_outcome(claim.version, result, claim.warm.is_some(), metrics);
        let mut slot = claim.project.fit.lock().expect("fit slot poisoned");
        slot.in_flight = None;
        slot.last = Some((claim.version, outcome));
        slot.evicted = None;
        claim.project.fit_ready.notify_all();
    }
    refits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ProjectConfig;
    use nhpp_data::sys17;
    use nhpp_models::Posterior;

    fn registry_with_sys17() -> Registry {
        let registry = Registry::open(None).unwrap();
        let config = ProjectConfig::from_labels("times", "go", "paper-info-times").unwrap();
        registry.create("sys17", config).unwrap();
        let project = registry.get("sys17").unwrap();
        let mut batch = format!("# t_end={}\n", sys17::T_END);
        for t in sys17::FAILURE_TIMES {
            batch.push_str(&format!("{t}\n"));
        }
        project.ingest(&batch).unwrap();
        registry
    }

    fn load(m: &std::sync::atomic::AtomicU64) -> u64 {
        m.load(Ordering::Relaxed)
    }

    #[test]
    fn concurrent_queries_coalesce_into_exactly_one_fit() {
        let registry = registry_with_sys17();
        let project = registry.get("sys17").unwrap();
        let settings = FitSettings::default();
        let metrics = Metrics::new();

        const QUERIES: usize = 64;
        let means: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..QUERIES)
                .map(|_| {
                    scope.spawn(|| {
                        ensure_fit(&project, &settings, &metrics)
                            .expect("fit succeeds")
                            .fit
                            .posterior
                            .mean_omega()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(load(&metrics.fits_total), 1, "exactly one refit ran");
        assert_eq!(
            load(&metrics.fits_coalesced) + load(&metrics.cache_hits),
            (QUERIES - 1) as u64,
            "everyone else joined or hit the cache"
        );
        assert!(means.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn refit_after_new_events_is_warm_started() {
        let registry = registry_with_sys17();
        let project = registry.get("sys17").unwrap();
        let settings = FitSettings::default();
        let metrics = Metrics::new();

        let first = ensure_fit(&project, &settings, &metrics).unwrap();
        assert!(!first.warm_started);
        assert!(first.warm.is_some(), "VB2 fit exports a warm table");

        project
            .ingest(&format!("# t_end={}\n", sys17::T_END + 1000.0))
            .unwrap();
        let second = ensure_fit(&project, &settings, &metrics).unwrap();
        assert!(second.warm_started, "refit used the previous fit's table");
        assert_eq!(load(&metrics.fits_total), 2);
        assert_eq!(load(&metrics.fits_warm), 1);

        // Same version again: pure cache hit.
        let third = ensure_fit(&project, &settings, &metrics).unwrap();
        assert!(Arc::ptr_eq(&second, &third));
        assert_eq!(load(&metrics.fits_total), 2);
        assert_eq!(load(&metrics.cache_hits), 1);
    }

    #[test]
    fn flush_tick_batch_refits_stale_projects_only() {
        let registry = registry_with_sys17();
        let config = ProjectConfig::from_labels("grouped", "go", "paper-info-grouped").unwrap();
        registry.create("daily", config).unwrap();
        let daily = registry.get("daily").unwrap();
        let mut batch = String::new();
        for (i, c) in sys17::DAILY_COUNTS.iter().enumerate() {
            batch.push_str(&format!("{},{c}\n", i + 1));
        }
        daily.ingest(&batch).unwrap();

        let settings = FitSettings::default();
        let metrics = Metrics::new();
        assert_eq!(flush_stale(&registry, &settings, &metrics), 2);
        assert_eq!(load(&metrics.fits_total), 2);
        // Nothing stale: the next tick is a no-op.
        assert_eq!(flush_stale(&registry, &settings, &metrics), 0);
        assert_eq!(load(&metrics.fits_total), 2);

        // New data on one project: only that one refits, warm.
        registry
            .get("sys17")
            .unwrap()
            .ingest(&format!("# t_end={}\n", sys17::T_END + 500.0))
            .unwrap();
        assert_eq!(flush_stale(&registry, &settings, &metrics), 1);
        assert_eq!(load(&metrics.fits_total), 3);
        assert_eq!(load(&metrics.fits_warm), 1);

        // Queries after the flush are pure cache hits.
        let cached = ensure_fit(&registry.get("sys17").unwrap(), &settings, &metrics).unwrap();
        assert!(cached.warm_started);
        assert_eq!(load(&metrics.fits_total), 3);
    }

    #[test]
    fn lru_evicts_oldest_posterior_and_flush_respects_it() {
        let registry = registry_with_sys17();
        // Three more small projects (cheap grouped fits).
        for id in ["a", "b", "c"] {
            let config =
                ProjectConfig::from_labels("grouped", "go", "paper-info-grouped").unwrap();
            registry.create(id, config).unwrap();
            let p = registry.get(id).unwrap();
            let mut batch = String::new();
            for (i, c) in sys17::DAILY_COUNTS.iter().enumerate() {
                batch.push_str(&format!("{},{c}\n", i + 1));
            }
            p.ingest(&batch).unwrap();
        }
        let settings = FitSettings::default();
        let metrics = Metrics::new();
        let cache = FitCache::new(2);

        for id in ["sys17", "a", "b"] {
            let p = registry.get(id).unwrap();
            ensure_fit(&p, &settings, &metrics).unwrap();
            cache.touch(&p, &metrics);
        }
        // Capacity 2: touching the third project evicted the first.
        assert_eq!(cache.len(), 2);
        assert_eq!(load(&metrics.posteriors_evicted), 1);
        assert!(
            cached_fit(&registry.get("sys17").unwrap()).is_none(),
            "sys17 was the LRU entry"
        );
        assert!(cached_fit(&registry.get("a").unwrap()).is_some());

        // The flush tick does not resurrect the evicted posterior...
        assert_eq!(flush_stale(&registry, &settings, &metrics), 1, "only 'c'");
        assert!(cached_fit(&registry.get("sys17").unwrap()).is_none());

        // ...but a direct query does, and the eviction marker clears.
        let p = registry.get("sys17").unwrap();
        ensure_fit(&p, &settings, &metrics).unwrap();
        assert!(cached_fit(&p).is_some());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let registry = registry_with_sys17();
        let p = registry.get("sys17").unwrap();
        let settings = FitSettings::default();
        let metrics = Metrics::new();
        let cache = FitCache::new(0);
        ensure_fit(&p, &settings, &metrics).unwrap();
        cache.touch(&p, &metrics);
        assert!(cache.is_empty(), "capacity 0 tracks nothing");
        assert_eq!(load(&metrics.posteriors_evicted), 0);
        assert!(cached_fit(&p).is_some());
    }

    #[test]
    fn fit_deadline_threads_into_the_cascade() {
        let registry = registry_with_sys17();
        let project = registry.get("sys17").unwrap();
        // A spent deadline: the cascade fails fast with a budget
        // classification instead of running anything.
        let settings = FitSettings {
            deadline: Some(std::time::Duration::ZERO),
            ..FitSettings::default()
        };
        let metrics = Metrics::new();
        match ensure_fit(&project, &settings, &metrics) {
            Err(FitServeError::Fit(failure)) => {
                assert!(failure.report.budget_exhausted());
            }
            other => panic!("expected budget-exhausted failure, got {other:?}"),
        }
        assert_eq!(load(&metrics.budget_exhaustions), 1);

        // A generous deadline fits normally.
        let settings = FitSettings {
            deadline: Some(std::time::Duration::from_secs(600)),
            ..FitSettings::default()
        };
        // New data so the cached failure does not short-circuit.
        project
            .ingest(&format!("# t_end={}\n", sys17::T_END + 100.0))
            .unwrap();
        ensure_fit(&project, &settings, &metrics).unwrap();
    }

    #[test]
    fn waiters_time_out_when_an_in_flight_fit_outlives_the_deadline() {
        let registry = registry_with_sys17();
        let project = registry.get("sys17").unwrap();
        // Mark a fit in flight by hand and never publish it: a waiter
        // with a deadline must give up instead of blocking forever.
        project.fit.lock().unwrap().in_flight = Some(project.version());
        let settings = FitSettings {
            deadline: Some(std::time::Duration::from_millis(50)),
            ..FitSettings::default()
        };
        let metrics = Metrics::new();
        let started = std::time::Instant::now();
        match ensure_fit(&project, &settings, &metrics) {
            Err(FitServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(started.elapsed() < std::time::Duration::from_secs(10));
        project.fit.lock().unwrap().in_flight = None;
    }

    #[test]
    fn failures_are_cached_per_version() {
        let registry = registry_with_sys17();
        let project = registry.get("sys17").unwrap();
        // An impossible budget with no fallback: the cascade must fail.
        let mut options = RobustOptions::strict();
        options.base.total_budget = Some(1);
        options.retry.max_attempts = 1;
        let settings = FitSettings {
            options,
            threads: 1,
            deadline: None,
        };
        let metrics = Metrics::new();

        let err = ensure_fit(&project, &settings, &metrics);
        assert!(matches!(err, Err(FitServeError::Fit(_))));
        assert_eq!(load(&metrics.fits_total), 1);
        assert_eq!(load(&metrics.fit_errors), 1);
        assert_eq!(load(&metrics.budget_exhaustions), 1);

        // Same version: the cached failure is returned, no refit storm.
        let err2 = ensure_fit(&project, &settings, &metrics);
        match err2 {
            Err(FitServeError::Fit(failure)) => {
                assert!(failure.report.budget_exhausted());
            }
            other => panic!("expected cached failure, got {other:?}"),
        }
        assert_eq!(load(&metrics.fits_total), 1, "failure was served from cache");
    }
}
