//! Statistical conformance harness for the NHPP interval estimators.
//!
//! The DSN 2007 paper's central claim is that the structured variational
//! posterior (VB2) is *calibrated* — its credible intervals track the
//! numerical-integration reference where the factorised VB1's
//! structurally-zero covariance under-covers. This crate turns that
//! claim into a continuously-checked correctness layer with four parts:
//!
//! * [`scenario`] — a seeded 2×2×2×2 scenario grid (model family ×
//!   data kind × prior × sample size) of deterministic synthetic
//!   campaigns;
//! * [`sbc`] — simulation-based calibration: rank/PIT uniformity of the
//!   ground truth under the fitted posterior, χ²- and KS-tested;
//! * [`coverage`] — an empirical coverage runner with binomial error
//!   bands and exhaustive per-method failure accounting;
//! * [`golden`] — a golden oracle pinning the paper's Tables 1–7 /
//!   Figure 1 numbers with tolerance bands and a `--bless` mode;
//! * [`calibrate`] — the offline learner behind the recalibration
//!   layer: it grid-searches per-regime spread factors against
//!   empirical coverage and emits the `nhpp-calibration/v1` dictionary
//!   that `nhpp_vb::calibration` applies and `nhpp-serve` loads;
//! * [`monitor`] — a seeded false-alarm-rate check for the streaming
//!   SPC charts: in-control traces must (almost) never trip either
//!   limit scheme's run-length alarm, with golden-pinned counts.
//!
//! The `conformance_report` bin sweeps a grid, emits a machine-readable
//! `conformance/v1` report ([`report`]), and exits nonzero when the
//! gate fails — the correctness twin of the bench crate's perf
//! regression pipeline.

// Same policy as the other workspace crates: `!(x > 0.0)` guards are
// NaN-rejecting by construction.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod calibrate;
pub mod coverage;
pub mod golden;
pub mod methods;
pub mod monitor;
pub mod report;
pub mod sbc;
pub mod scenario;
pub mod stats;

pub use calibrate::{learn, CalibrateConfig};
pub use coverage::{run_cell_coverage, CalibratedCoverage, CoverageConfig, MethodCoverage};
pub use methods::{posterior_cdf_beta, posterior_cdf_omega, Method};
pub use monitor::{run_false_alarm, CellFalseAlarm, FalseAlarmConfig, SchemeTally};
pub use report::{gate_passed, run, ConformanceRun, Grid, SCHEMA};
pub use sbc::{run_sbc, SbcConfig, SbcResult};
pub use scenario::{DataKind, GridCell, ModelKind, PriorKind, SampleSize};
pub use stats::{binomial_se, chi_square_uniform, ks_uniform, UniformityTest};
