//! Offline learner for the coverage-recalibration dictionary.
//!
//! Sweeps the seeded scenario grid and, per **regime** (model ×
//! data-kind × prior-informativeness, pooling the two sample-size
//! cells) × method, finds the spread factor `c` that restores nominal
//! empirical coverage when intervals are rescaled about the posterior
//! median (`nhpp_vb::calibration::Calibration`).
//!
//! The search does not re-fit per candidate factor. For each fitted
//! campaign the **minimal covering factor** is computed in closed form:
//! with posterior median `m`, raw interval `(lo, hi)` and truth `ω*`,
//!
//! * `ω* ≥ m` ⟹ `c* = (ω* − m) / (hi − m)`;
//! * `ω* < m` ⟹ `c* = (m − ω*) / (m − lo)`
//!
//! (the calibrated interval covers the truth iff `c ≥ c*`). Empirical
//! coverage at factor `c` is then just the fraction of campaigns with
//! `c* ≤ c` — the empirical CDF of the `c*` sample — so a grid search
//! over factors is an exact order-statistic lookup at fit cost zero.
//! Raw coverage falls out as the `c* ≤ 1` fraction of the same sample.
//!
//! Three stabilisers keep the dictionary honest:
//!
//! * **Snap-to-identity** — a method whose pooled raw rate clears
//!   `level − SNAP_SE_MARGIN·se` keeps factor `1.0` exactly:
//!   calibration must never perturb an answer when the evidence of
//!   under-coverage is weak. The margin is deliberately tighter than
//!   the gate's 3·se band — a regime that snaps on borderline pooled
//!   evidence can still fail the per-cell held-out check, so weak
//!   evidence earns a factor rather than the benefit of the doubt.
//!   (Over-coverage always snaps: factors never shrink an interval.)
//! * **Search margin** — the factor search targets an in-sample
//!   coverage of `level + TARGET_SE_MARGIN·se`, not `level` itself.
//!   A factor whose in-sample coverage sits exactly at nominal is a
//!   coin flip on a held-out seed; one binomial-se of slack keeps the
//!   held-out rate inside the gate's band.
//! * **Disjoint seed** — the learner's default base seed differs from
//!   the conformance coverage runner's, so the gate that judges the
//!   dictionary (`report::run` with calibration applied) validates on
//!   campaigns the learner never saw.

use crate::methods::Method;
use crate::scenario::{sample_prior, GridCell};
use crate::stats::binomial_se;
use nhpp_vb::calibration::{dictionary_key, CalibrationDictionary, CalibrationEntry};
use std::collections::BTreeMap;

/// Learner configuration.
#[derive(Debug, Clone)]
pub struct CalibrateConfig {
    /// Campaigns per grid cell (a regime pools its size cells).
    pub replications: usize,
    /// Nominal interval level the factors are tuned at.
    pub level: f64,
    /// Base seed of the learning sweep. The default is deliberately
    /// distinct from `CoverageConfig::default().seed`, so learned
    /// factors are validated out-of-sample by the conformance gate.
    pub seed: u64,
    /// Label recorded in the emitted dictionary.
    pub label: String,
}

impl Default for CalibrateConfig {
    fn default() -> Self {
        CalibrateConfig {
            replications: 200,
            level: 0.95,
            seed: 0xCA_11B8,
            label: "CALIBRATION".to_string(),
        }
    }
}

/// Smallest factor on the search grid.
pub const FACTOR_MIN: f64 = 0.25;
/// Largest factor on the search grid (also the cap for campaigns whose
/// truth no finite widening can reach, e.g. a degenerate interval).
pub const FACTOR_MAX: f64 = 4.0;
/// Grid step; a power of two, so every candidate factor is exact in
/// binary and the blessed dictionary is bit-stable across hosts.
pub const FACTOR_STEP: f64 = 1.0 / 64.0;
/// Snap-to-identity threshold, in binomial standard errors below the
/// nominal level (module docs).
pub const SNAP_SE_MARGIN: f64 = 1.5;
/// In-sample coverage target of the factor search, in binomial
/// standard errors above the nominal level (module docs).
pub const TARGET_SE_MARGIN: f64 = 1.0;

/// The minimal covering factor for one fitted campaign (documented in
/// the module header). Degenerate spreads fall back to `0.0` when the
/// raw interval already covers and `FACTOR_MAX` when it cannot.
pub fn minimal_covering_factor(median: f64, (lo, hi): (f64, f64), truth: f64) -> f64 {
    let (gap, spread) = if truth >= median {
        (truth - median, hi - median)
    } else {
        (median - truth, median - lo)
    };
    if gap <= 0.0 {
        return 0.0;
    }
    if !(spread > 0.0) {
        return FACTOR_MAX;
    }
    (gap / spread).min(FACTOR_MAX)
}

/// The per-(regime, method) sample the learner accumulates.
#[derive(Debug, Clone, Default)]
struct RegimeSample {
    /// Minimal covering factors of the fitted campaigns.
    factors: Vec<f64>,
}

impl RegimeSample {
    /// Empirical coverage of the calibrated interval at factor `c`.
    fn coverage_at(&self, c: f64) -> f64 {
        let covered = self.factors.iter().filter(|&&f| f <= c).count();
        covered as f64 / self.factors.len() as f64
    }

    /// Selects the dictionary entry: identity when the raw rate clears
    /// the snap threshold, otherwise the smallest grid factor whose
    /// in-sample coverage reaches the margined target (module docs).
    fn entry(&self, level: f64) -> CalibrationEntry {
        let fitted = self.factors.len();
        let raw_rate = self.coverage_at(1.0);
        let se = binomial_se(level, fitted);
        let factor = if fitted == 0 || raw_rate >= level - SNAP_SE_MARGIN * se {
            1.0
        } else {
            let target = (level + TARGET_SE_MARGIN * se).min(1.0);
            let steps = ((FACTOR_MAX - FACTOR_MIN) / FACTOR_STEP).round() as usize;
            (0..=steps)
                .map(|k| FACTOR_MIN + k as f64 * FACTOR_STEP)
                .find(|&c| self.coverage_at(c) >= target)
                .unwrap_or(FACTOR_MAX)
        };
        CalibrationEntry {
            factor,
            raw_rate,
            calibrated_rate: if fitted == 0 { f64::NAN } else { self.coverage_at(factor) },
            fitted,
        }
    }
}

/// Runs the learning sweep over `cells` and assembles the dictionary.
/// Cells sharing a regime (differing only in sample size) pool their
/// campaigns into one entry, matching the dictionary's key space.
pub fn learn(cells: &[GridCell], config: &CalibrateConfig) -> CalibrationDictionary {
    let mut samples: BTreeMap<String, RegimeSample> = BTreeMap::new();
    for cell in cells {
        let spec = cell.spec();
        let prior = cell.prior();
        let vb2_options = cell.vb2_options();
        for rep in 0..config.replications {
            // Same stream layout as the coverage runner: truth first,
            // then the trace, all from the campaign's own RNG.
            let mut rng = cell.rng(config.seed, rep as u64);
            let (omega_true, beta_true) =
                sample_prior(&prior, &mut rng).unwrap_or((cell.omega_true(), cell.beta_true()));
            let Ok(data) = cell.simulate_with(omega_true, beta_true, &mut rng) else {
                continue; // Unusable campaigns carry no interval to rescale.
            };
            for method in Method::all() {
                let Ok(posterior) = method.fit(spec, prior, &data, &vb2_options) else {
                    continue;
                };
                let median = posterior.quantile_omega(0.5);
                let interval = posterior.credible_interval_omega(config.level);
                let key = dictionary_key(
                    cell.model_key(),
                    cell.data_key(),
                    cell.prior_key(),
                    method.label(),
                );
                samples
                    .entry(key)
                    .or_default()
                    .factors
                    .push(minimal_covering_factor(median, interval, omega_true));
            }
        }
    }
    CalibrationDictionary {
        label: config.label.clone(),
        seed: config.seed,
        replications: config.replications,
        level: config.level,
        entries: samples
            .into_iter()
            .map(|(key, sample)| (key, sample.entry(config.level)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_covering_factor_matches_interval_geometry() {
        // Truth above the median: only the upper spread matters.
        assert_eq!(minimal_covering_factor(10.0, (8.0, 14.0), 16.0), 1.5);
        // Truth below: the lower spread.
        assert_eq!(minimal_covering_factor(10.0, (8.0, 14.0), 7.0), 1.5);
        // Raw interval already covers ⟺ factor ≤ 1.
        assert!(minimal_covering_factor(10.0, (8.0, 14.0), 13.0) <= 1.0);
        // Truth exactly at the median needs no spread at all.
        assert_eq!(minimal_covering_factor(10.0, (8.0, 14.0), 10.0), 0.0);
        // Degenerate spread with an uncovered truth hits the cap.
        assert_eq!(minimal_covering_factor(10.0, (10.0, 10.0), 12.0), FACTOR_MAX);
    }

    #[test]
    fn entry_selection_snaps_and_searches() {
        // 50 campaigns, raw rate 0.4 at level 0.95 → search widens.
        let mut sample = RegimeSample::default();
        for i in 0..50 {
            sample.factors.push(if i < 20 { 0.5 } else { 2.0 });
        }
        let entry = sample.entry(0.95);
        assert_eq!(entry.raw_rate, 0.4);
        assert_eq!(entry.factor, 2.0);
        assert!(entry.calibrated_rate >= 0.95);
        assert_eq!(entry.fitted, 50);
        // All factors ≤ 1 → raw rate 1.0: over-coverage always snaps,
        // factors never shrink an interval.
        let snug = RegimeSample {
            factors: vec![0.2; 10],
        };
        assert_eq!(snug.entry(0.95).factor, 1.0);
    }

    #[test]
    fn learner_pools_sizes_and_records_provenance() {
        let cells = [GridCell::smoke_grid()[0], GridCell::smoke_grid()[1]];
        assert_eq!(cells[0].model_key(), cells[1].model_key());
        let config = CalibrateConfig {
            replications: 4,
            label: "CAL_UNIT".to_string(),
            ..CalibrateConfig::default()
        };
        let dict = learn(&cells, &config);
        assert_eq!(dict.label, "CAL_UNIT");
        assert_eq!(dict.seed, config.seed);
        assert_eq!(dict.level, 0.95);
        // One regime, all four methods.
        assert_eq!(dict.entries.len(), 4);
        let entry = dict.lookup("go", "dt", "info", "VB1").expect("pooled entry");
        // Both size cells contributed (allowing for rare drops).
        assert!(entry.fitted > config.replications);
        // The default learner seed must stay disjoint from the coverage
        // runner's, or the gate stops being out-of-sample.
        assert_ne!(
            CalibrateConfig::default().seed,
            crate::coverage::CoverageConfig::default().seed
        );
    }
}
