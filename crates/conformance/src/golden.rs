//! Golden oracle for the paper's tables and figure.
//!
//! Pins the numeric content of Tables 1–7 and Figure 1 — posterior
//! moments, credible intervals and reliability estimates per scenario ×
//! method — as fixtures of `(key, value, rel_tol)` lines checked in
//! under `tests/golden/`. Wall times are deliberately excluded (they
//! are the one non-deterministic column of Tables 6–7; the perf
//! pipeline owns them).
//!
//! Two fixture tiers:
//! * **smoke** — the `DT-Info` scenario without MCMC; cheap enough to
//!   run inside tier-1 `cargo test -q` on every PR.
//! * **full** — all four scenarios with the seeded MCMC included;
//!   checked by the `conformance_report golden` bin in its own CI job.
//!
//! `--bless` mode regenerates the fixtures from the current tree; a
//! diff in review then *is* the numeric change, with its tolerance.

use crate::methods::Method;
use nhpp_bench::{MethodSet, Scenario};
use nhpp_models::{ModelSpec, Posterior};
use std::fmt::Write as _;

/// One pinned quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenEntry {
    /// Stable key, `"<scenario>/<method>/<quantity>"`.
    pub key: String,
    /// The pinned value.
    pub value: f64,
    /// Relative tolerance band for comparisons.
    pub rel_tol: f64,
}

/// Relative tolerance for posterior moments and quantiles.
pub const TOL_MOMENT: f64 = 1e-3;
/// Looser band for reliability quantities (they compound two quantile
/// solves).
pub const TOL_RELIABILITY: f64 = 5e-3;
/// Band for everything MCMC (seeded but sensitive to any change in
/// sampling order).
pub const TOL_MCMC: f64 = 2e-2;

/// The single tolerance authority for golden entries: every fixture
/// line's `rel_tol` — whether generated here, blessed by the bin, or
/// replayed by `nhpp check` against a live server — comes from this
/// table keyed on the entry's `<method>` and `<quantity>` segments.
/// A seam test in the integration suite holds the checked-in fixtures
/// to it, so the bands can never drift apart by convention again.
pub fn tolerance(method: &str, quantity: &str) -> f64 {
    if method == "MCMC" {
        TOL_MCMC
    } else if quantity.starts_with("rel_") {
        TOL_RELIABILITY
    } else {
        TOL_MOMENT
    }
}

fn push_method_entries(
    entries: &mut Vec<GoldenEntry>,
    scenario: &Scenario,
    label: &str,
    posterior: &dyn Posterior,
) {
    let mut push = |quantity: &str, value: f64| {
        entries.push(GoldenEntry {
            key: format!("{}/{}/{}", scenario.name, label, quantity),
            value,
            rel_tol: tolerance(label, quantity),
        });
    };
    // Tables 1–3: posterior moments.
    push("mean_omega", posterior.mean_omega());
    push("sd_omega", posterior.var_omega().sqrt());
    push("mean_beta", posterior.mean_beta());
    push("sd_beta", posterior.var_beta().sqrt());
    // Tables 4–5: two-sided 99% credible intervals.
    let (lo, hi) = posterior.credible_interval_omega(0.99);
    push("ci99_omega_lo", lo);
    push("ci99_omega_hi", hi);
    let (lo, hi) = posterior.credible_interval_beta(0.99);
    push("ci99_beta_lo", lo);
    push("ci99_beta_hi", hi);
    // Tables 6–7 / Figure 1: reliability point and 99% interval at the
    // scenario's mission lengths.
    let t = scenario.data.observation_end();
    for &u in &scenario.missions {
        let r = posterior.reliability_point(t, u);
        let (rlo, rhi) = posterior.reliability_interval(t, u, 0.99);
        push(&format!("rel_point_u{u}"), r);
        push(&format!("rel_lo_u{u}"), rlo);
        push(&format!("rel_hi_u{u}"), rhi);
    }
}

/// The smoke tier: `DT-Info`, the four fast methods, no MCMC.
pub fn smoke_entries() -> Vec<GoldenEntry> {
    let scenario = Scenario::dt_info();
    let spec = ModelSpec::goel_okumoto();
    let vb2_options = scenario.vb2_options();
    let mut entries = Vec::new();
    for method in Method::all() {
        let posterior = method
            .fit(spec, scenario.prior, &scenario.data, &vb2_options)
            .unwrap_or_else(|reason| panic!("{} fit failed: {reason}", method.label()));
        push_method_entries(&mut entries, &scenario, method.label(), posterior.as_ref());
    }
    entries
}

/// The full tier: all four paper scenarios, all five methods including
/// the seeded MCMC.
pub fn full_entries() -> Vec<GoldenEntry> {
    let mut entries = Vec::new();
    for scenario in Scenario::all() {
        let set = MethodSet::fit(&scenario);
        for (label, posterior) in set.in_paper_order() {
            push_method_entries(&mut entries, &scenario, label, posterior);
        }
    }
    entries
}

/// Renders entries to the fixture format: one `key value rel_tol` line
/// each, `#` comments allowed.
pub fn render(entries: &[GoldenEntry]) -> String {
    let mut out = String::from(
        "# Golden oracle fixture: <key> <value> <rel_tol> per line.\n\
         # Regenerate with: cargo run --release -p nhpp-conformance \
         --bin conformance_report -- golden --bless\n",
    );
    for e in entries {
        let _ = writeln!(out, "{} {:.12e} {:e}", e.key, e.value, e.rel_tol);
    }
    out
}

/// Parses a fixture file.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse(text: &str) -> Result<Vec<GoldenEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(key), Some(value), Some(tol), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("line {}: expected `key value rel_tol`", lineno + 1));
        };
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        let rel_tol: f64 = tol
            .parse()
            .map_err(|_| format!("line {}: bad rel_tol {tol:?}", lineno + 1))?;
        entries.push(GoldenEntry {
            key: key.to_string(),
            value,
            rel_tol,
        });
    }
    Ok(entries)
}

/// Compares freshly computed entries against a parsed fixture. Returns
/// one message per mismatch: value outside its tolerance band, a key
/// missing from the fixture, or a fixture key no longer computed.
pub fn compare(expected: &[GoldenEntry], actual: &[GoldenEntry]) -> Vec<String> {
    let mut mismatches = Vec::new();
    for exp in expected {
        match actual.iter().find(|a| a.key == exp.key) {
            None => mismatches.push(format!("{}: no longer computed", exp.key)),
            Some(act) => {
                // Tolerance from the *fixture*, so blessing a looser
                // band is an explicit, reviewable act.
                let band = exp.rel_tol * exp.value.abs().max(1e-12);
                if !(act.value - exp.value).abs().le(&band) {
                    mismatches.push(format!(
                        "{}: {} outside {} ± {band:.3e}",
                        exp.key, act.value, exp.value
                    ));
                }
            }
        }
    }
    for act in actual {
        if !expected.iter().any(|e| e.key == act.key) {
            mismatches.push(format!("{}: not in fixture (re-bless?)", act.key));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<GoldenEntry> {
        vec![
            GoldenEntry {
                key: "DT-Info/VB2/mean_omega".to_string(),
                value: 41.78,
                rel_tol: 1e-3,
            },
            GoldenEntry {
                key: "DT-Info/VB2/mean_beta".to_string(),
                value: 1.11e-5,
                rel_tol: 1e-3,
            },
        ]
    }

    #[test]
    fn fixture_round_trip() {
        let entries = sample();
        let text = render(&entries);
        let back = parse(&text).expect("well-formed fixture");
        assert_eq!(back.len(), entries.len());
        assert!(compare(&back, &entries).is_empty());
    }

    #[test]
    fn compare_catches_all_mismatch_kinds() {
        let expected = sample();
        let mut actual = sample();
        actual[0].value *= 1.01; // 1% off against a 0.1% band
        actual.push(GoldenEntry {
            key: "DT-Info/VB2/new_quantity".to_string(),
            value: 1.0,
            rel_tol: 1e-3,
        });
        let mut missing = expected.clone();
        missing.push(GoldenEntry {
            key: "DT-Info/VB2/gone".to_string(),
            value: 2.0,
            rel_tol: 1e-3,
        });
        let mismatches = compare(&missing, &actual);
        assert_eq!(mismatches.len(), 3, "{mismatches:?}");
        // NaN never satisfies a band.
        let mut nan = sample();
        nan[0].value = f64::NAN;
        assert!(!compare(&expected, &nan).is_empty());
    }

    #[test]
    fn tolerance_table_is_the_only_authority() {
        assert_eq!(tolerance("VB2", "mean_omega"), TOL_MOMENT);
        assert_eq!(tolerance("VB1", "ci99_beta_lo"), TOL_MOMENT);
        assert_eq!(tolerance("LAPL", "rel_point_u1000"), TOL_RELIABILITY);
        assert_eq!(tolerance("NINT", "rel_hi_u5"), TOL_RELIABILITY);
        // MCMC overrides every quantity class.
        assert_eq!(tolerance("MCMC", "mean_omega"), TOL_MCMC);
        assert_eq!(tolerance("MCMC", "rel_lo_u1000"), TOL_MCMC);
        // Freshly generated entries carry exactly the table's bands.
        for e in smoke_entries() {
            let mut parts = e.key.split('/');
            let (_scenario, method, quantity) = (
                parts.next().unwrap(),
                parts.next().unwrap(),
                parts.next().unwrap(),
            );
            assert_eq!(e.rel_tol, tolerance(method, quantity), "{}", e.key);
        }
    }

    #[test]
    fn malformed_fixtures_are_rejected() {
        assert!(parse("just-a-key").is_err());
        assert!(parse("key notanumber 1e-3").is_err());
        assert!(parse("key 1.0 xyz").is_err());
        assert!(parse("key 1.0 1e-3 extra").is_err());
        assert!(parse("# comment only\n\n").expect("ok").is_empty());
    }
}
