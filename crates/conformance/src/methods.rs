//! The estimation methods swept by the conformance harness, behind one
//! uniform fit interface with failure-reason classification.
//!
//! Failure reasons are compact variant labels (`"IllPosed"`,
//! `"Numeric(NoBracket)"`, …), not full error messages: messages carry
//! per-campaign payloads (iteration counts, float values) that would
//! fragment the aggregated accounting maps.

use nhpp_bayes::laplace::LaplacePosterior;
use nhpp_bayes::nint::{bounds_from_posterior, NintOptions, NintPosterior};
use nhpp_bayes::BayesError;
use nhpp_data::ObservedData;
use nhpp_models::prior::NhppPrior;
use nhpp_models::{ModelError, ModelSpec, Posterior};
use nhpp_numeric::NumericError;
use nhpp_vb::{Vb1Options, Vb1Posterior, Vb2Options, Vb2Posterior, VbError};

/// The four methods under conformance test (PROFILE is frequentist and
/// MCMC too slow for repeated simulation; both stay in the bench layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Structured variational Bayes (the paper's contribution).
    Vb2,
    /// Fully factorised variational Bayes (the under-covering baseline).
    Vb1,
    /// Numerical integration (the accuracy reference).
    Nint,
    /// Laplace approximation.
    Lapl,
}

impl Method {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Vb2 => "VB2",
            Method::Vb1 => "VB1",
            Method::Nint => "NINT",
            Method::Lapl => "LAPL",
        }
    }

    /// All four methods in presentation order.
    pub fn all() -> [Method; 4] {
        [Method::Vb2, Method::Vb1, Method::Nint, Method::Lapl]
    }

    /// Fits this method's posterior, classifying any failure.
    ///
    /// NINT takes its integration box from a preliminary VB2 fit (the
    /// paper's §6 procedure); a VB2 failure there is reported as the
    /// NINT failure reason `Bounds(<class>)`.
    ///
    /// # Errors
    ///
    /// A compact reason label suitable for aggregation.
    pub fn fit(
        &self,
        spec: ModelSpec,
        prior: NhppPrior,
        data: &ObservedData,
        vb2_options: &Vb2Options,
    ) -> Result<Box<dyn Posterior>, String> {
        match self {
            Method::Vb2 => Vb2Posterior::fit(spec, prior, data, *vb2_options)
                .map(|p| Box::new(p) as Box<dyn Posterior>)
                .map_err(|e| vb_error_class(&e)),
            Method::Vb1 => Vb1Posterior::fit(spec, prior, data, Vb1Options::default())
                .map(|p| Box::new(p) as Box<dyn Posterior>)
                .map_err(|e| vb_error_class(&e)),
            Method::Lapl => LaplacePosterior::fit(spec, prior, data)
                .map(|p| Box::new(p) as Box<dyn Posterior>)
                .map_err(|e| bayes_error_class(&e)),
            Method::Nint => {
                let reference = Vb2Posterior::fit(spec, prior, data, *vb2_options)
                    .map_err(|e| format!("Bounds({})", vb_error_class(&e)))?;
                NintPosterior::fit(
                    spec,
                    prior,
                    data,
                    bounds_from_posterior(&reference),
                    NintOptions::default(),
                )
                .map(|p| Box::new(p) as Box<dyn Posterior>)
                .map_err(|e| bayes_error_class(&e))
            }
        }
    }
}

/// Marginal posterior CDF of `ω` at `x`, by bisecting the monotone
/// quantile function — works uniformly across every [`Posterior`]
/// implementor, which is exactly what SBC needs.
pub fn posterior_cdf_omega(posterior: &dyn Posterior, x: f64) -> f64 {
    bisect_cdf(|p| posterior.quantile_omega(p), x)
}

/// Marginal posterior CDF of `β` at `x` (see [`posterior_cdf_omega`]).
pub fn posterior_cdf_beta(posterior: &dyn Posterior, x: f64) -> f64 {
    bisect_cdf(|p| posterior.quantile_beta(p), x)
}

fn bisect_cdf<Q: Fn(f64) -> f64>(quantile: Q, x: f64) -> f64 {
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    // 32 halvings resolve the probability to ~2e-10 — far below any
    // tolerance the uniformity tests can see, and each halving costs a
    // quantile solve on the inner posterior.
    for _ in 0..32 {
        let mid = 0.5 * (lo + hi);
        if quantile(mid) < x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Compact variant label for a [`VbError`].
pub fn vb_error_class(e: &VbError) -> String {
    match e {
        VbError::NoConvergence { context, .. } => format!("NoConvergence({context})"),
        VbError::TruncationOverflow { .. } => "TruncationOverflow".to_string(),
        VbError::InvalidOption { .. } => "InvalidOption".to_string(),
        VbError::DegenerateWeights { .. } => "DegenerateWeights".to_string(),
        VbError::CascadeExhausted { .. } => "CascadeExhausted".to_string(),
        VbError::Model(e) => model_error_class(e),
        VbError::Numeric(e) => numeric_error_class(e),
        VbError::Dist(_) => "Dist".to_string(),
        VbError::Bayes(e) => bayes_error_class(e),
    }
}

/// Compact variant label for a [`BayesError`].
pub fn bayes_error_class(e: &BayesError) -> String {
    match e {
        BayesError::Model(e) => model_error_class(e),
        BayesError::Numeric(e) => numeric_error_class(e),
        BayesError::Dist(_) => "Dist".to_string(),
        BayesError::IllPosed { .. } => "IllPosed".to_string(),
        BayesError::InvalidOption { .. } => "InvalidOption".to_string(),
    }
}

/// Compact variant label for a [`ModelError`].
pub fn model_error_class(e: &ModelError) -> String {
    match e {
        ModelError::InvalidParameter { name, .. } => format!("InvalidParameter({name})"),
        ModelError::NoConvergence { context, .. } => format!("NoConvergence({context})"),
        ModelError::DegenerateData { .. } => "DegenerateData".to_string(),
        ModelError::Numeric(e) => numeric_error_class(e),
        ModelError::Dist(_) => "Dist".to_string(),
    }
}

/// Compact variant label for a [`NumericError`].
pub fn numeric_error_class(e: &NumericError) -> String {
    let class = match e {
        NumericError::NoBracket { .. } => "NoBracket",
        NumericError::MaxIterations { .. } => "MaxIterations",
        NumericError::NonFinite { .. } => "NonFinite",
        NumericError::InvalidArgument { .. } => "InvalidArgument",
        NumericError::BudgetExhausted { .. } => "BudgetExhausted",
    };
    format!("Numeric({class})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GridCell;

    #[test]
    fn every_method_fits_a_smoke_campaign() {
        let cell = GridCell::smoke_grid()[0];
        let data = cell.simulate(0xD0_17, 0).expect("fit-worthy campaign");
        for method in Method::all() {
            let posterior = method
                .fit(cell.spec(), cell.prior(), &data, &cell.vb2_options())
                .unwrap_or_else(|reason| panic!("{} failed: {reason}", method.label()));
            assert!(posterior.mean_omega() > 0.0, "{}", method.label());
        }
    }

    #[test]
    fn cdf_inverts_the_quantile_function() {
        let cell = GridCell::smoke_grid()[0];
        let data = cell.simulate(0xD0_17, 1).expect("fit-worthy campaign");
        let posterior = Method::Vb2
            .fit(cell.spec(), cell.prior(), &data, &cell.vb2_options())
            .expect("VB2 fit");
        for p in [0.1, 0.5, 0.9] {
            let x = posterior.quantile_omega(p);
            let back = posterior_cdf_omega(posterior.as_ref(), x);
            assert!((back - p).abs() < 1e-6, "p={p}, back={back}");
            let xb = posterior.quantile_beta(p);
            let backb = posterior_cdf_beta(posterior.as_ref(), xb);
            assert!((backb - p).abs() < 1e-6, "p={p}, back={backb}");
        }
    }
}
