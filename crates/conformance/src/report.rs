//! The `conformance/v1` machine-readable report and its pass/fail gate.
//!
//! Mirrors the `bench/v1` shape from the perf-regression pipeline: a
//! schema tag, a label, and a deterministic (sorted-key) body, written
//! with the shared minimal JSON machinery in [`nhpp_bench::json`]. The
//! gate encodes the paper's claim directly: on every Info cell of the
//! gated grid, the exact methods (VB2, NINT) must pass SBC
//! rank-uniformity *and* hold nominal coverage within ±3 binomial
//! standard errors, while VB1 must be flagged under-covering somewhere
//! on the grid. The approximate methods' (VB1, LAPL) raw misses are
//! characterized, and a calibrated run hard-gates their *calibrated*
//! coverage instead — see [`gate`].

use crate::coverage::{run_cell_coverage, CoverageConfig, MethodCoverage};
use crate::sbc::{run_sbc, SbcConfig, SbcResult};
use crate::scenario::{GridCell, PriorKind};
use nhpp_bench::json::{self, json_number, json_string, Value};
use nhpp_vb::calibration::CalibrationDictionary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag emitted in every report.
pub const SCHEMA: &str = "nhpp-conformance-report/v1";

/// Which slice of the scenario grid to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// The deterministic PR-time subset (Info cells only).
    Smoke,
    /// All sixteen cells.
    Full,
}

impl Grid {
    /// The cells this grid sweeps.
    pub fn cells(&self) -> Vec<GridCell> {
        match self {
            Grid::Smoke => GridCell::smoke_grid(),
            Grid::Full => GridCell::grid(),
        }
    }

    /// Stable name used in the report body.
    pub fn name(&self) -> &'static str {
        match self {
            Grid::Smoke => "smoke",
            Grid::Full => "full",
        }
    }
}

/// Results for one grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cell label (`"go-dt-info-small"`).
    pub name: String,
    /// `true` for proper-prior cells (the gated ones).
    pub info: bool,
    /// Per-method coverage outcomes.
    pub coverage: Vec<MethodCoverage>,
    /// Per-method SBC outcomes (empty on NoInfo cells — SBC needs a
    /// proper generative prior).
    pub sbc: Vec<SbcResult>,
}

/// Gate verdict over a run.
#[derive(Debug, Clone)]
pub struct Gate {
    /// `true` when every gated criterion held.
    pub pass: bool,
    /// Human-readable description of each violated criterion.
    pub failures: Vec<String>,
}

/// A complete conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceRun {
    /// Report label, conventionally `CONFORMANCE_<pr>`.
    pub label: String,
    /// Grid slice that was swept.
    pub grid: Grid,
    /// Nominal interval level used by the coverage runner.
    pub level: f64,
    /// Label of the calibration dictionary applied, if any.
    pub calibration: Option<String>,
    /// Per-cell results in grid order.
    pub cells: Vec<CellResult>,
    /// The gate verdict.
    pub gate: Gate,
}

/// Sweeps the grid: coverage on every cell, SBC on the Info cells. With
/// a calibration dictionary, every cell additionally tallies the
/// calibrated intervals and the gate grows the calibrated criteria —
/// since the coverage seed differs from the learner's, this is the
/// held-out validation of the dictionary.
pub fn run(
    grid: Grid,
    label: &str,
    coverage_config: &CoverageConfig,
    sbc_config: &SbcConfig,
    calibration: Option<&CalibrationDictionary>,
) -> ConformanceRun {
    let mut cells = Vec::new();
    for cell in grid.cells() {
        let info = cell.prior == PriorKind::Info;
        let coverage = run_cell_coverage(&cell, coverage_config, calibration);
        let sbc = if info {
            crate::methods::Method::all()
                .iter()
                .map(|&m| run_sbc(&cell, m, sbc_config))
                .collect()
        } else {
            Vec::new()
        };
        cells.push(CellResult {
            name: cell.name(),
            info,
            coverage,
            sbc,
        });
    }
    let gate = gate(&cells, coverage_config.level);
    ConformanceRun {
        label: label.to_string(),
        grid,
        level: coverage_config.level,
        calibration: calibration.map(|d| d.label.clone()),
        cells,
        gate,
    }
}

/// Evaluates the gate at nominal `level`.
///
/// The methods split into two classes. **Exact** methods (VB2, NINT)
/// claim calibrated posteriors, so the raw criteria hold them to it on
/// the Info cells: within the ±3·se coverage band and SBC-uniform.
/// **Approximate** methods (VB1, LAPL) have structural interval
/// deficits — VB1's variational variance collapse everywhere, LAPL's
/// skew deficit at full-grid power on about half the cells — so their
/// raw coverage is *characterized*, not gated: VB1 must be flagged
/// under-covering somewhere (the paper's headline), and any raw miss
/// is reported in the summary/JSON.
///
/// The coverage guarantee for the approximate methods is owned by the
/// recalibration layer. In a calibrated run (any cell carrying
/// calibrated tallies), wherever raw VB1/LAPL under-covers the
/// dictionary must supply a factor *and* the calibrated coverage must
/// land within the ±3·se band; an exact method's calibrated coverage
/// must never leave the band on an Info cell (non-regression: their
/// factors snap to 1, so this cannot differ from the raw criterion
/// unless the dictionary is wrong).
pub fn gate(cells: &[CellResult], level: f64) -> Gate {
    let mut failures = Vec::new();
    let mut vb1_flagged = false;
    for cell in cells.iter().filter(|c| c.info) {
        for mc in &cell.coverage {
            match mc.method {
                "VB2" | "NINT" if !mc.within_band => {
                    failures.push(format!(
                        "{}/{}: coverage {:.3} outside {level:.3} ± 3·{:.3}",
                        cell.name, mc.method, mc.rate, mc.se
                    ));
                }
                "VB1" if mc.under_covering => {
                    vb1_flagged = true;
                }
                _ => {}
            }
        }
        for sbc in &cell.sbc {
            if matches!(sbc.method, "VB2" | "NINT") && !sbc.calibrated_omega {
                failures.push(format!(
                    "{}/{}: SBC rank-uniformity rejected (chi2 p={:.2e}, ks p={:.2e})",
                    cell.name, sbc.method, sbc.chi2_omega.p_value, sbc.ks_omega.p_value
                ));
            }
        }
    }
    if !vb1_flagged {
        failures.push("VB1 was not flagged under-covering on any Info cell".to_string());
    }
    let calibrated_run = cells
        .iter()
        .any(|c| c.coverage.iter().any(|mc| mc.calibrated.is_some()));
    if calibrated_run {
        for cell in cells {
            for mc in &cell.coverage {
                match (mc.method, &mc.calibrated) {
                    ("VB1" | "LAPL", Some(cal)) if mc.under_covering && !cal.within_band => {
                        failures.push(format!(
                            "{}/{}: calibrated coverage {:.3} (factor {}) still outside \
                             {level:.3} ± 3·{:.3}",
                            cell.name, mc.method, cal.rate, cal.factor, cal.se
                        ));
                    }
                    ("VB1" | "LAPL", None) if mc.under_covering => {
                        failures.push(format!(
                            "{}/{}: under-covering but no calibration entry for its regime",
                            cell.name, mc.method
                        ));
                    }
                    ("VB2" | "NINT", Some(cal)) if cell.info && !cal.within_band => {
                        failures.push(format!(
                            "{}/{}: calibration regressed coverage to {:.3} (factor {})",
                            cell.name, mc.method, cal.rate, cal.factor
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
    Gate {
        pass: failures.is_empty(),
        failures,
    }
}

fn json_dropped(dropped: &BTreeMap<String, usize>) -> String {
    let mut out = String::from("{");
    for (i, (reason, count)) in dropped.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_string(reason), count);
    }
    out.push('}');
    out
}

/// `NaN`-tolerant number rendering (`null` when not finite — a rate with
/// zero fitted campaigns).
fn json_maybe(x: f64) -> String {
    if x.is_finite() {
        json_number(x)
    } else {
        "null".to_string()
    }
}

impl ConformanceRun {
    /// Serialises the run to the canonical `conformance/v1` layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(out, "  \"label\": {},", json_string(&self.label));
        let _ = writeln!(out, "  \"grid\": {},", json_string(self.grid.name()));
        let _ = writeln!(out, "  \"level\": {},", json_number(self.level));
        let _ = writeln!(
            out,
            "  \"calibration\": {},",
            match &self.calibration {
                Some(label) => json_string(label),
                None => "null".to_string(),
            }
        );
        out.push_str("  \"cells\": {\n");
        for (ci, cell) in self.cells.iter().enumerate() {
            let _ = writeln!(out, "    {}: {{", json_string(&cell.name));
            let _ = writeln!(out, "      \"info\": {},", cell.info);
            out.push_str("      \"coverage\": {\n");
            for (i, mc) in cell.coverage.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {}: {{ \"attempted\": {}, \"fitted\": {}, \"covered\": {}, \
                     \"rate\": {}, \"se\": {}, \"within_band\": {}, \"under_covering\": {}, \
                     \"dropped\": {}",
                    json_string(mc.method),
                    mc.tally.attempted,
                    mc.tally.fitted,
                    mc.tally.covered,
                    json_maybe(mc.rate),
                    json_maybe(mc.se),
                    mc.within_band,
                    mc.under_covering,
                    json_dropped(&mc.tally.dropped),
                );
                if let Some(cal) = &mc.calibrated {
                    let _ = write!(
                        out,
                        ", \"calibrated\": {{ \"factor\": {}, \"covered\": {}, \"rate\": {}, \
                         \"se\": {}, \"within_band\": {} }}",
                        json_number(cal.factor),
                        cal.tally.covered,
                        json_maybe(cal.rate),
                        json_maybe(cal.se),
                        cal.within_band,
                    );
                }
                out.push_str(" }");
                out.push_str(if i + 1 == cell.coverage.len() { "\n" } else { ",\n" });
            }
            out.push_str("      },\n");
            out.push_str("      \"sbc\": {\n");
            for (i, sbc) in cell.sbc.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {}: {{ \"attempted\": {}, \"used\": {}, \
                     \"chi2_omega\": {}, \"chi2_p_omega\": {}, \
                     \"ks_omega\": {}, \"ks_p_omega\": {}, \
                     \"chi2_p_beta\": {}, \"ks_p_beta\": {}, \
                     \"calibrated_omega\": {}, \"dropped\": {} }}",
                    json_string(sbc.method),
                    sbc.attempted,
                    sbc.pits_omega.len(),
                    json_maybe(sbc.chi2_omega.statistic),
                    json_maybe(sbc.chi2_omega.p_value),
                    json_maybe(sbc.ks_omega.statistic),
                    json_maybe(sbc.ks_omega.p_value),
                    json_maybe(sbc.chi2_beta.p_value),
                    json_maybe(sbc.ks_beta.p_value),
                    sbc.calibrated_omega,
                    json_dropped(&sbc.dropped),
                );
                out.push_str(if i + 1 == cell.sbc.len() { "\n" } else { ",\n" });
            }
            out.push_str("      }\n");
            out.push_str("    }");
            out.push_str(if ci + 1 == self.cells.len() { "\n" } else { ",\n" });
        }
        out.push_str("  },\n");
        out.push_str("  \"gate\": {\n");
        let _ = writeln!(out, "    \"pass\": {},", self.gate.pass);
        out.push_str("    \"failures\": [");
        for (i, f) in self.gate.failures.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(f));
        }
        out.push_str("]\n  }\n}\n");
        out
    }

    /// Human-readable summary for the console.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "conformance run {} over the {} grid (level {:.0}%)",
            self.label,
            self.grid.name(),
            self.level * 100.0
        );
        if let Some(calibration) = &self.calibration {
            let _ = writeln!(out, "calibration dictionary: {calibration}");
        }
        for cell in &self.cells {
            let _ = writeln!(out, "  {}", cell.name);
            for mc in &cell.coverage {
                let _ = writeln!(
                    out,
                    "    {:<5} coverage {:>5}  rate {}  band {}  dropped {}",
                    mc.method,
                    format!("{}/{}", mc.tally.covered, mc.tally.fitted),
                    if mc.rate.is_finite() {
                        format!("{:.1}%", mc.rate * 100.0)
                    } else {
                        "  n/a".to_string()
                    },
                    if mc.within_band {
                        "ok"
                    } else if mc.under_covering {
                        "UNDER"
                    } else {
                        "OUT"
                    },
                    mc.tally.dropped_total(),
                );
                if let Some(cal) = &mc.calibrated {
                    let _ = writeln!(
                        out,
                        "    {:<5} calibrated {:>2}  rate {}  band {}  (factor {})",
                        mc.method,
                        "",
                        if cal.rate.is_finite() {
                            format!("{:.1}%", cal.rate * 100.0)
                        } else {
                            "  n/a".to_string()
                        },
                        if cal.within_band { "ok" } else { "OUT" },
                        cal.factor,
                    );
                }
            }
            for sbc in &cell.sbc {
                let _ = writeln!(
                    out,
                    "    {:<5} SBC      n {:>4}  chi2 p {:.2e}  ks p {:.2e}  {}",
                    sbc.method,
                    sbc.pits_omega.len(),
                    sbc.chi2_omega.p_value,
                    sbc.ks_omega.p_value,
                    if sbc.calibrated_omega {
                        "uniform"
                    } else {
                        "REJECTED"
                    },
                );
            }
        }
        let _ = writeln!(out, "gate: {}", if self.gate.pass { "PASS" } else { "FAIL" });
        for f in &self.gate.failures {
            let _ = writeln!(out, "  - {f}");
        }
        out
    }
}

/// Reads back just the gate verdict of an emitted report (what the CI
/// artifact check needs), validating the schema tag.
///
/// # Errors
///
/// A description of the first syntax or schema violation.
pub fn gate_passed(text: &str) -> Result<bool, String> {
    let value = json::parse(text)?;
    let top = value.as_object().ok_or("top-level value must be an object")?;
    let schema = top
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" tag")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema {schema:?}, expected {SCHEMA:?}"));
    }
    top.get("gate")
        .and_then(Value::as_object)
        .and_then(|g| g.get("pass"))
        .and_then(Value::as_bool)
        .ok_or_else(|| "missing gate.pass".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UniformityTest;
    use nhpp_bench::coverage::Tally;

    fn fake_cell(vb1_under: bool) -> CellResult {
        let mut tally = Tally::default();
        for _ in 0..57 {
            tally.record(Ok((0.0, 100.0)), 50.0);
        }
        for _ in 0..3 {
            tally.record(Ok((0.0, 1.0)), 50.0);
        }
        let mk = |method: &'static str, within: bool, under: bool| MethodCoverage {
            method,
            tally: tally.clone(),
            rate: 0.95,
            se: 0.028,
            within_band: within,
            under_covering: under,
            calibrated: None,
        };
        let uniform = UniformityTest {
            statistic: 5.0,
            p_value: 0.5,
        };
        let sbc = |method: &'static str, ok: bool| SbcResult {
            method,
            attempted: 10,
            pits_omega: vec![0.5; 10],
            pits_beta: vec![0.5; 10],
            dropped: BTreeMap::new(),
            chi2_omega: uniform,
            ks_omega: uniform,
            chi2_beta: uniform,
            ks_beta: uniform,
            calibrated_omega: ok,
        };
        CellResult {
            name: "go-dt-info-small".to_string(),
            info: true,
            coverage: vec![
                mk("VB2", true, false),
                mk("VB1", false, vb1_under),
                mk("NINT", true, false),
                mk("LAPL", true, false),
            ],
            sbc: vec![
                sbc("VB2", true),
                sbc("VB1", false),
                sbc("NINT", true),
                sbc("LAPL", true),
            ],
        }
    }

    #[test]
    fn gate_encodes_the_papers_story() {
        let good = gate(&[fake_cell(true)], 0.95);
        assert!(good.pass, "{:?}", good.failures);
        // VB1 never flagged under-covering → the gate must fail.
        let bad = gate(&[fake_cell(false)], 0.95);
        assert!(!bad.pass);
        assert!(bad.failures.iter().any(|f| f.contains("VB1")));
    }

    fn with_calibration(
        mut cell: CellResult,
        method: &str,
        factor: f64,
        within_band: bool,
    ) -> CellResult {
        let mc = cell
            .coverage
            .iter_mut()
            .find(|mc| mc.method == method)
            .expect("method present");
        mc.calibrated = Some(crate::coverage::CalibratedCoverage {
            factor,
            tally: mc.tally.clone(),
            rate: if within_band { 0.95 } else { 0.85 },
            se: 0.028,
            within_band,
        });
        cell
    }

    #[test]
    fn gate_judges_calibrated_coverage_where_raw_vb1_fails() {
        // Calibrated VB1 lands in band → the calibrated criterion holds.
        let fixed = with_calibration(fake_cell(true), "VB1", 1.5, true);
        let good = gate(&[fixed], 0.95);
        assert!(good.pass, "{:?}", good.failures);
        // Calibrated VB1 still outside the band → gate failure.
        let still_bad = with_calibration(fake_cell(true), "VB1", 1.5, false);
        let bad = gate(&[still_bad], 0.95);
        assert!(bad.failures.iter().any(|f| f.contains("calibrated coverage")));
        // A calibrated run whose dictionary lacks the regime of an
        // under-covering VB1 cell is a failure, not a silent skip.
        let missing = with_calibration(fake_cell(true), "VB2", 1.0, true);
        let bad = gate(&[missing], 0.95);
        assert!(bad
            .failures
            .iter()
            .any(|f| f.contains("no calibration entry")));
        // Calibration must never push an already-calibrated method out.
        let regressed = with_calibration(
            with_calibration(fake_cell(true), "VB1", 1.5, true),
            "NINT",
            0.5,
            false,
        );
        let bad = gate(&[regressed], 0.95);
        assert!(bad.failures.iter().any(|f| f.contains("regressed")));
    }

    fn with_raw_miss(mut cell: CellResult, method: &str) -> CellResult {
        let mc = cell
            .coverage
            .iter_mut()
            .find(|mc| mc.method == method)
            .expect("method present");
        mc.rate = 0.88;
        mc.within_band = false;
        mc.under_covering = true;
        cell
    }

    #[test]
    fn lapl_raw_misses_are_characterized_until_a_calibrated_run_judges_them() {
        // Raw run: an under-covering LAPL cell is reported, not gated —
        // the approximate methods' coverage guarantee belongs to the
        // calibration layer.
        let raw = gate(&[with_raw_miss(fake_cell(true), "LAPL")], 0.95);
        assert!(raw.pass, "{:?}", raw.failures);
        // Calibrated run: the dictionary must mend exactly that cell.
        let mended = with_calibration(
            with_calibration(with_raw_miss(fake_cell(true), "LAPL"), "LAPL", 1.5, true),
            "VB1",
            2.0,
            true,
        );
        let good = gate(&[mended], 0.95);
        assert!(good.pass, "{:?}", good.failures);
        // Calibrated LAPL still outside the band → failure.
        let unmended = with_calibration(
            with_calibration(with_raw_miss(fake_cell(true), "LAPL"), "LAPL", 1.5, false),
            "VB1",
            2.0,
            true,
        );
        let bad = gate(&[unmended], 0.95);
        assert!(bad
            .failures
            .iter()
            .any(|f| f.contains("LAPL: calibrated coverage")));
        // No LAPL entry for an under-covering regime → failure.
        let missing = with_calibration(with_raw_miss(fake_cell(true), "LAPL"), "VB1", 2.0, true);
        let bad = gate(&[missing], 0.95);
        assert!(bad
            .failures
            .iter()
            .any(|f| f.contains("LAPL: under-covering but no calibration entry")));
    }

    #[test]
    fn report_json_round_trips_through_the_shared_parser() {
        let run = ConformanceRun {
            label: "CONFORMANCE_TEST".to_string(),
            grid: Grid::Smoke,
            level: 0.95,
            calibration: Some("CAL_TEST".to_string()),
            cells: vec![with_calibration(fake_cell(true), "VB1", 1.5, true)],
            gate: gate(&[with_calibration(fake_cell(true), "VB1", 1.5, true)], 0.95),
        };
        let text = run.to_json();
        assert!(gate_passed(&text).expect("valid report"));
        assert!(text.contains("\"calibration\": \"CAL_TEST\""));
        assert!(text.contains("\"factor\": 1.5"));
        assert!(gate_passed("{}").is_err());
        assert!(gate_passed("{\"schema\": \"other/v9\"}").is_err());
        // The summary renders without panicking on the same data.
        let summary = run.summary();
        assert!(summary.contains("gate: PASS"));
        assert!(summary.contains("calibrated"));
    }
}
