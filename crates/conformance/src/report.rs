//! The `conformance/v1` machine-readable report and its pass/fail gate.
//!
//! Mirrors the `bench/v1` shape from the perf-regression pipeline: a
//! schema tag, a label, and a deterministic (sorted-key) body, written
//! with the shared minimal JSON machinery in [`nhpp_bench::json`]. The
//! gate encodes the paper's claim directly: on every Info cell of the
//! gated grid, VB2, NINT and LAPL must pass SBC rank-uniformity *and*
//! hold nominal coverage within ±3 binomial standard errors, while VB1
//! must be flagged under-covering somewhere on the grid.

use crate::coverage::{run_cell_coverage, CoverageConfig, MethodCoverage};
use crate::sbc::{run_sbc, SbcConfig, SbcResult};
use crate::scenario::{GridCell, PriorKind};
use nhpp_bench::json::{self, json_number, json_string, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag emitted in every report.
pub const SCHEMA: &str = "nhpp-conformance-report/v1";

/// Which slice of the scenario grid to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// The deterministic PR-time subset (Info cells only).
    Smoke,
    /// All sixteen cells.
    Full,
}

impl Grid {
    /// The cells this grid sweeps.
    pub fn cells(&self) -> Vec<GridCell> {
        match self {
            Grid::Smoke => GridCell::smoke_grid(),
            Grid::Full => GridCell::grid(),
        }
    }

    /// Stable name used in the report body.
    pub fn name(&self) -> &'static str {
        match self {
            Grid::Smoke => "smoke",
            Grid::Full => "full",
        }
    }
}

/// Results for one grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cell label (`"go-dt-info-small"`).
    pub name: String,
    /// `true` for proper-prior cells (the gated ones).
    pub info: bool,
    /// Per-method coverage outcomes.
    pub coverage: Vec<MethodCoverage>,
    /// Per-method SBC outcomes (empty on NoInfo cells — SBC needs a
    /// proper generative prior).
    pub sbc: Vec<SbcResult>,
}

/// Gate verdict over a run.
#[derive(Debug, Clone)]
pub struct Gate {
    /// `true` when every gated criterion held.
    pub pass: bool,
    /// Human-readable description of each violated criterion.
    pub failures: Vec<String>,
}

/// A complete conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceRun {
    /// Report label, conventionally `CONFORMANCE_<pr>`.
    pub label: String,
    /// Grid slice that was swept.
    pub grid: Grid,
    /// Nominal interval level used by the coverage runner.
    pub level: f64,
    /// Per-cell results in grid order.
    pub cells: Vec<CellResult>,
    /// The gate verdict.
    pub gate: Gate,
}

/// Sweeps the grid: coverage on every cell, SBC on the Info cells.
pub fn run(
    grid: Grid,
    label: &str,
    coverage_config: &CoverageConfig,
    sbc_config: &SbcConfig,
) -> ConformanceRun {
    let mut cells = Vec::new();
    for cell in grid.cells() {
        let info = cell.prior == PriorKind::Info;
        let coverage = run_cell_coverage(&cell, coverage_config);
        let sbc = if info {
            crate::methods::Method::all()
                .iter()
                .map(|&m| run_sbc(&cell, m, sbc_config))
                .collect()
        } else {
            Vec::new()
        };
        cells.push(CellResult {
            name: cell.name(),
            info,
            coverage,
            sbc,
        });
    }
    let gate = gate(&cells, coverage_config.level);
    ConformanceRun {
        label: label.to_string(),
        grid,
        level: coverage_config.level,
        cells,
        gate,
    }
}

/// Evaluates the gate over the Info cells at nominal `level`.
pub fn gate(cells: &[CellResult], level: f64) -> Gate {
    let mut failures = Vec::new();
    let mut vb1_flagged = false;
    for cell in cells.iter().filter(|c| c.info) {
        for mc in &cell.coverage {
            match mc.method {
                "VB2" | "NINT" | "LAPL" if !mc.within_band => {
                    failures.push(format!(
                        "{}/{}: coverage {:.3} outside {level:.3} ± 3·{:.3}",
                        cell.name, mc.method, mc.rate, mc.se
                    ));
                }
                "VB1" if mc.under_covering => {
                    vb1_flagged = true;
                }
                _ => {}
            }
        }
        for sbc in &cell.sbc {
            if matches!(sbc.method, "VB2" | "NINT" | "LAPL") && !sbc.calibrated_omega {
                failures.push(format!(
                    "{}/{}: SBC rank-uniformity rejected (chi2 p={:.2e}, ks p={:.2e})",
                    cell.name, sbc.method, sbc.chi2_omega.p_value, sbc.ks_omega.p_value
                ));
            }
        }
    }
    if !vb1_flagged {
        failures.push("VB1 was not flagged under-covering on any Info cell".to_string());
    }
    Gate {
        pass: failures.is_empty(),
        failures,
    }
}

fn json_dropped(dropped: &BTreeMap<String, usize>) -> String {
    let mut out = String::from("{");
    for (i, (reason, count)) in dropped.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_string(reason), count);
    }
    out.push('}');
    out
}

/// `NaN`-tolerant number rendering (`null` when not finite — a rate with
/// zero fitted campaigns).
fn json_maybe(x: f64) -> String {
    if x.is_finite() {
        json_number(x)
    } else {
        "null".to_string()
    }
}

impl ConformanceRun {
    /// Serialises the run to the canonical `conformance/v1` layout.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(out, "  \"label\": {},", json_string(&self.label));
        let _ = writeln!(out, "  \"grid\": {},", json_string(self.grid.name()));
        let _ = writeln!(out, "  \"level\": {},", json_number(self.level));
        out.push_str("  \"cells\": {\n");
        for (ci, cell) in self.cells.iter().enumerate() {
            let _ = writeln!(out, "    {}: {{", json_string(&cell.name));
            let _ = writeln!(out, "      \"info\": {},", cell.info);
            out.push_str("      \"coverage\": {\n");
            for (i, mc) in cell.coverage.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {}: {{ \"attempted\": {}, \"fitted\": {}, \"covered\": {}, \
                     \"rate\": {}, \"se\": {}, \"within_band\": {}, \"under_covering\": {}, \
                     \"dropped\": {} }}",
                    json_string(mc.method),
                    mc.tally.attempted,
                    mc.tally.fitted,
                    mc.tally.covered,
                    json_maybe(mc.rate),
                    json_maybe(mc.se),
                    mc.within_band,
                    mc.under_covering,
                    json_dropped(&mc.tally.dropped),
                );
                out.push_str(if i + 1 == cell.coverage.len() { "\n" } else { ",\n" });
            }
            out.push_str("      },\n");
            out.push_str("      \"sbc\": {\n");
            for (i, sbc) in cell.sbc.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {}: {{ \"attempted\": {}, \"used\": {}, \
                     \"chi2_omega\": {}, \"chi2_p_omega\": {}, \
                     \"ks_omega\": {}, \"ks_p_omega\": {}, \
                     \"chi2_p_beta\": {}, \"ks_p_beta\": {}, \
                     \"calibrated_omega\": {}, \"dropped\": {} }}",
                    json_string(sbc.method),
                    sbc.attempted,
                    sbc.pits_omega.len(),
                    json_maybe(sbc.chi2_omega.statistic),
                    json_maybe(sbc.chi2_omega.p_value),
                    json_maybe(sbc.ks_omega.statistic),
                    json_maybe(sbc.ks_omega.p_value),
                    json_maybe(sbc.chi2_beta.p_value),
                    json_maybe(sbc.ks_beta.p_value),
                    sbc.calibrated_omega,
                    json_dropped(&sbc.dropped),
                );
                out.push_str(if i + 1 == cell.sbc.len() { "\n" } else { ",\n" });
            }
            out.push_str("      }\n");
            out.push_str("    }");
            out.push_str(if ci + 1 == self.cells.len() { "\n" } else { ",\n" });
        }
        out.push_str("  },\n");
        out.push_str("  \"gate\": {\n");
        let _ = writeln!(out, "    \"pass\": {},", self.gate.pass);
        out.push_str("    \"failures\": [");
        for (i, f) in self.gate.failures.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(f));
        }
        out.push_str("]\n  }\n}\n");
        out
    }

    /// Human-readable summary for the console.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "conformance run {} over the {} grid (level {:.0}%)",
            self.label,
            self.grid.name(),
            self.level * 100.0
        );
        for cell in &self.cells {
            let _ = writeln!(out, "  {}", cell.name);
            for mc in &cell.coverage {
                let _ = writeln!(
                    out,
                    "    {:<5} coverage {:>5}  rate {}  band {}  dropped {}",
                    mc.method,
                    format!("{}/{}", mc.tally.covered, mc.tally.fitted),
                    if mc.rate.is_finite() {
                        format!("{:.1}%", mc.rate * 100.0)
                    } else {
                        "  n/a".to_string()
                    },
                    if mc.within_band {
                        "ok"
                    } else if mc.under_covering {
                        "UNDER"
                    } else {
                        "OUT"
                    },
                    mc.tally.dropped_total(),
                );
            }
            for sbc in &cell.sbc {
                let _ = writeln!(
                    out,
                    "    {:<5} SBC      n {:>4}  chi2 p {:.2e}  ks p {:.2e}  {}",
                    sbc.method,
                    sbc.pits_omega.len(),
                    sbc.chi2_omega.p_value,
                    sbc.ks_omega.p_value,
                    if sbc.calibrated_omega {
                        "uniform"
                    } else {
                        "REJECTED"
                    },
                );
            }
        }
        let _ = writeln!(out, "gate: {}", if self.gate.pass { "PASS" } else { "FAIL" });
        for f in &self.gate.failures {
            let _ = writeln!(out, "  - {f}");
        }
        out
    }
}

/// Reads back just the gate verdict of an emitted report (what the CI
/// artifact check needs), validating the schema tag.
///
/// # Errors
///
/// A description of the first syntax or schema violation.
pub fn gate_passed(text: &str) -> Result<bool, String> {
    let value = json::parse(text)?;
    let top = value.as_object().ok_or("top-level value must be an object")?;
    let schema = top
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" tag")?;
    if schema != SCHEMA {
        return Err(format!("unsupported schema {schema:?}, expected {SCHEMA:?}"));
    }
    top.get("gate")
        .and_then(Value::as_object)
        .and_then(|g| g.get("pass"))
        .and_then(Value::as_bool)
        .ok_or_else(|| "missing gate.pass".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UniformityTest;
    use nhpp_bench::coverage::Tally;

    fn fake_cell(vb1_under: bool) -> CellResult {
        let mut tally = Tally::default();
        for _ in 0..57 {
            tally.record(Ok((0.0, 100.0)), 50.0);
        }
        for _ in 0..3 {
            tally.record(Ok((0.0, 1.0)), 50.0);
        }
        let mk = |method: &'static str, within: bool, under: bool| MethodCoverage {
            method,
            tally: tally.clone(),
            rate: 0.95,
            se: 0.028,
            within_band: within,
            under_covering: under,
        };
        let uniform = UniformityTest {
            statistic: 5.0,
            p_value: 0.5,
        };
        let sbc = |method: &'static str, ok: bool| SbcResult {
            method,
            attempted: 10,
            pits_omega: vec![0.5; 10],
            pits_beta: vec![0.5; 10],
            dropped: BTreeMap::new(),
            chi2_omega: uniform,
            ks_omega: uniform,
            chi2_beta: uniform,
            ks_beta: uniform,
            calibrated_omega: ok,
        };
        CellResult {
            name: "go-dt-info-small".to_string(),
            info: true,
            coverage: vec![
                mk("VB2", true, false),
                mk("VB1", false, vb1_under),
                mk("NINT", true, false),
                mk("LAPL", true, false),
            ],
            sbc: vec![
                sbc("VB2", true),
                sbc("VB1", false),
                sbc("NINT", true),
                sbc("LAPL", true),
            ],
        }
    }

    #[test]
    fn gate_encodes_the_papers_story() {
        let good = gate(&[fake_cell(true)], 0.95);
        assert!(good.pass, "{:?}", good.failures);
        // VB1 never flagged under-covering → the gate must fail.
        let bad = gate(&[fake_cell(false)], 0.95);
        assert!(!bad.pass);
        assert!(bad.failures.iter().any(|f| f.contains("VB1")));
    }

    #[test]
    fn report_json_round_trips_through_the_shared_parser() {
        let run = ConformanceRun {
            label: "CONFORMANCE_TEST".to_string(),
            grid: Grid::Smoke,
            level: 0.95,
            cells: vec![fake_cell(true)],
            gate: gate(&[fake_cell(true)], 0.95),
        };
        let text = run.to_json();
        assert!(gate_passed(&text).expect("valid report"));
        assert!(gate_passed("{}").is_err());
        assert!(gate_passed("{\"schema\": \"other/v9\"}").is_err());
        // The summary renders without panicking on the same data.
        assert!(run.summary().contains("gate: PASS"));
    }
}
