//! The seeded scenario grid the conformance harness sweeps.
//!
//! One [`GridCell`] fixes everything that varies across the paper's
//! experimental axes — model family (GO `α₀=1` / delayed-S `α₀=2`),
//! data kind (`D_T` failure times / `D_G` grouped counts), prior
//! (Info / NoInfo) and sample size (small / medium) — and can then
//! deterministically simulate any number of synthetic campaigns from
//! it. All randomness flows through the vendored `StdRng` seeded as
//! `base_seed ⊕ cell_hash + replication`, so every campaign is
//! reproducible in isolation and identical across hosts.

use nhpp_data::simulate::NhppSimulator;
use nhpp_data::ObservedData;
use nhpp_dist::{Gamma, Sample};
use nhpp_models::prior::{NhppPrior, ParamPrior};
use nhpp_models::ModelSpec;
use nhpp_vb::{Truncation, Vb2Options};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Model family axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Goel–Okumoto, `α₀ = 1`.
    GoelOkumoto,
    /// Delayed S-shaped, `α₀ = 2`.
    DelayedS,
}

/// Data-kind axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// Individual failure times censored at `t_end` (`D_T`).
    Times,
    /// Grouped counts over equal-width bins (`D_G`).
    Grouped,
}

/// Prior axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorKind {
    /// Proper conjugate Gamma priors centred at the generating truth.
    Info,
    /// Flat improper priors (the paper's ill-posed case).
    NoInfo,
}

/// Sample-size axis, realised through the generating `ω`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleSize {
    /// ~16 observed failures per campaign.
    Small,
    /// ~38 observed failures per campaign.
    Medium,
}

/// One cell of the conformance grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Model family.
    pub model: ModelKind,
    /// Data kind.
    pub data: DataKind,
    /// Prior kind.
    pub prior: PriorKind,
    /// Sample size.
    pub size: SampleSize,
}

/// Number of equal-width bins used for grouped campaigns.
pub const GROUPED_BINS: usize = 20;

impl GridCell {
    /// Stable model-axis key, the first segment of [`GridCell::name`]
    /// and of calibration-dictionary keys.
    pub fn model_key(&self) -> &'static str {
        match self.model {
            ModelKind::GoelOkumoto => "go",
            ModelKind::DelayedS => "dss",
        }
    }

    /// Stable data-kind key (`"dt"` / `"dg"`).
    pub fn data_key(&self) -> &'static str {
        match self.data {
            DataKind::Times => "dt",
            DataKind::Grouped => "dg",
        }
    }

    /// Stable prior-informativeness key (`"info"` / `"noinfo"`).
    pub fn prior_key(&self) -> &'static str {
        match self.prior {
            PriorKind::Info => "info",
            PriorKind::NoInfo => "noinfo",
        }
    }

    /// Stable sample-size key (`"small"` / `"medium"`).
    pub fn size_key(&self) -> &'static str {
        match self.size {
            SampleSize::Small => "small",
            SampleSize::Medium => "medium",
        }
    }

    /// Stable cell label, e.g. `"go-dt-info-small"`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.model_key(),
            self.data_key(),
            self.prior_key(),
            self.size_key()
        )
    }

    /// The model specification for this cell.
    pub fn spec(&self) -> ModelSpec {
        match self.model {
            ModelKind::GoelOkumoto => ModelSpec::goel_okumoto(),
            ModelKind::DelayedS => ModelSpec::delayed_s_shaped(),
        }
    }

    /// Generating expected fault count.
    pub fn omega_true(&self) -> f64 {
        match self.size {
            SampleSize::Small => 25.0,
            SampleSize::Medium => 60.0,
        }
    }

    /// Generating detection rate, chosen so the growth curve is ~60%
    /// saturated at `t_end` for both families (the paper's small-sample
    /// regime, where the interval methods genuinely differ).
    pub fn beta_true(&self) -> f64 {
        match self.model {
            ModelKind::GoelOkumoto => 2e-4,
            ModelKind::DelayedS => 4e-4,
        }
    }

    /// Censoring time per campaign.
    pub fn t_end(&self) -> f64 {
        5_000.0
    }

    /// The prior this cell both fits with and (for SBC) draws ground
    /// truths from: Info is a proper Gamma pair centred at the
    /// generating truth with 50% relative sd, NoInfo is flat.
    pub fn prior(&self) -> NhppPrior {
        match self.prior {
            PriorKind::Info => NhppPrior::informative(
                Gamma::from_mean_sd(self.omega_true(), 0.5 * self.omega_true()).expect("valid"),
                Gamma::from_mean_sd(self.beta_true(), 0.5 * self.beta_true()).expect("valid"),
            ),
            PriorKind::NoInfo => NhppPrior::flat(),
        }
    }

    /// VB2 options matching the bench `Scenario` policy: strict adaptive
    /// truncation under proper priors, capped growth under flat priors
    /// (whose exact posterior over the latent count is improper).
    pub fn vb2_options(&self) -> Vb2Options {
        match self.prior {
            PriorKind::Info => Vb2Options::default(),
            PriorKind::NoInfo => Vb2Options {
                truncation: Truncation::AdaptiveCapped {
                    epsilon: 5e-15,
                    cap: ((5.0 * self.omega_true()) as u64).max(100),
                },
                ..Vb2Options::default()
            },
        }
    }

    /// Deterministic per-cell seed component (FNV-1a over the name), so
    /// different cells never share an RNG stream even under the same
    /// base seed.
    pub fn seed_component(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Simulates one campaign from explicit `(ω, β)` ground truth with a
    /// dedicated RNG.
    ///
    /// # Errors
    ///
    /// A reason label (`"TooFewFailures"`, `"InvalidTruth"`, …) when the
    /// campaign cannot support a fit; the caller records it instead of
    /// dropping the campaign.
    pub fn simulate_with<R: Rng + ?Sized>(
        &self,
        omega: f64,
        beta: f64,
        rng: &mut R,
    ) -> Result<ObservedData, String> {
        let law = self
            .spec()
            .failure_law(beta)
            .map_err(|_| "InvalidTruth".to_string())?;
        let sim = NhppSimulator::new(omega, law).map_err(|_| "InvalidTruth".to_string())?;
        let data: ObservedData = match self.data {
            DataKind::Times => sim
                .simulate_censored(rng, self.t_end())
                .map_err(|e| format!("Simulation({e})"))?
                .into(),
            DataKind::Grouped => {
                let t_end = self.t_end();
                let boundaries: Vec<f64> = (1..=GROUPED_BINS)
                    .map(|i| t_end * i as f64 / GROUPED_BINS as f64)
                    .collect();
                sim.simulate_grouped(rng, boundaries)
                    .map_err(|e| format!("Simulation({e})"))?
                    .into()
            }
        };
        if data.total_count() < 3 {
            return Err("TooFewFailures".to_string());
        }
        Ok(data)
    }

    /// Simulates campaign number `rep` from the cell's fixed generating
    /// truth, deterministically in `(seed, rep)`.
    ///
    /// # Errors
    ///
    /// See [`GridCell::simulate_with`].
    pub fn simulate(&self, seed: u64, rep: u64) -> Result<ObservedData, String> {
        let mut rng = self.rng(seed, rep);
        self.simulate_with(self.omega_true(), self.beta_true(), &mut rng)
    }

    /// The campaign RNG for `(seed, rep)` in this cell.
    pub fn rng(&self, seed: u64, rep: u64) -> StdRng {
        StdRng::seed_from_u64(seed ^ self.seed_component().wrapping_add(rep))
    }

    /// The full 2×2×2×2 grid, in a fixed order.
    pub fn grid() -> Vec<GridCell> {
        let mut cells = Vec::with_capacity(16);
        for model in [ModelKind::GoelOkumoto, ModelKind::DelayedS] {
            for data in [DataKind::Times, DataKind::Grouped] {
                for prior in [PriorKind::Info, PriorKind::NoInfo] {
                    for size in [SampleSize::Small, SampleSize::Medium] {
                        cells.push(GridCell {
                            model,
                            data,
                            prior,
                            size,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The deterministic smoke subset gated at PR time: all-Info cells
    /// spanning both model families, both data kinds and both sample
    /// sizes, small enough to finish well under the CI budget.
    pub fn smoke_grid() -> Vec<GridCell> {
        vec![
            GridCell {
                model: ModelKind::GoelOkumoto,
                data: DataKind::Times,
                prior: PriorKind::Info,
                size: SampleSize::Small,
            },
            GridCell {
                model: ModelKind::GoelOkumoto,
                data: DataKind::Times,
                prior: PriorKind::Info,
                size: SampleSize::Medium,
            },
            GridCell {
                model: ModelKind::DelayedS,
                data: DataKind::Times,
                prior: PriorKind::Info,
                size: SampleSize::Small,
            },
            GridCell {
                model: ModelKind::GoelOkumoto,
                data: DataKind::Grouped,
                prior: PriorKind::Info,
                size: SampleSize::Small,
            },
        ]
    }
}

/// Draws `(ω, β)` from a proper prior; `None` when either marginal is
/// flat (SBC needs a generative prior).
pub fn sample_prior<R: Rng + ?Sized>(prior: &NhppPrior, rng: &mut R) -> Option<(f64, f64)> {
    // Draw ω first, then β: a fixed stream layout shared with SBC.
    let omega = match prior.omega {
        ParamPrior::Gamma(g) => g.sample(rng),
        ParamPrior::Flat => return None,
    };
    let beta = match prior.beta {
        ParamPrior::Gamma(g) => g.sample(rng),
        ParamPrior::Flat => return None,
    };
    Some((omega, beta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_names_are_stable() {
        let grid = GridCell::grid();
        assert_eq!(grid.len(), 16);
        let names: Vec<String> = grid.iter().map(GridCell::name).collect();
        assert_eq!(names[0], "go-dt-info-small");
        assert_eq!(names[15], "dss-dg-noinfo-medium");
        // All names unique → all seed components distinct streams.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        for cell in &GridCell::smoke_grid() {
            assert_eq!(cell.prior, PriorKind::Info);
        }
    }

    #[test]
    fn simulation_is_deterministic_per_seed_and_rep() {
        let cell = GridCell::smoke_grid()[0];
        let a = cell.simulate(42, 7).expect("fit-worthy campaign");
        let b = cell.simulate(42, 7).expect("fit-worthy campaign");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = cell.simulate(42, 8).expect("fit-worthy campaign");
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn grouped_cells_produce_grouped_data() {
        let cell = GridCell {
            model: ModelKind::GoelOkumoto,
            data: DataKind::Grouped,
            prior: PriorKind::Info,
            size: SampleSize::Medium,
        };
        let data = cell.simulate(1, 0).expect("fit-worthy campaign");
        assert!(matches!(data, ObservedData::Grouped(_)));
    }

    #[test]
    fn prior_sampling_respects_flatness() {
        let info = GridCell::smoke_grid()[0].prior();
        let mut rng = StdRng::seed_from_u64(3);
        let (omega, beta) = sample_prior(&info, &mut rng).expect("proper prior");
        assert!(omega > 0.0 && beta > 0.0);
        assert!(sample_prior(&NhppPrior::flat(), &mut rng).is_none());
    }
}
