//! Simulation-based calibration (SBC) in its PIT form.
//!
//! For a Bayesian procedure that is *exactly* calibrated, the following
//! loop produces Uniform(0, 1) values: draw `(ω*, β*)` from the prior,
//! simulate a campaign from that truth, fit the posterior, and evaluate
//! the fitted marginal CDF at the truth (the probability integral
//! transform — the continuous-parameter limit of the classic SBC rank
//! statistic). Systematic deviation from uniformity localises the kind
//! of mis-calibration: an over-confident posterior (VB1's structural
//! variance deficit) piles PIT mass at both tails, a biased one piles
//! mass at a single tail.
//!
//! SBC requires a *proper* generative prior, so it runs on Info cells
//! only; NoInfo cells participate in the coverage runner instead.

use crate::methods::{posterior_cdf_beta, posterior_cdf_omega, Method};
use crate::scenario::{sample_prior, GridCell, PriorKind};
use crate::stats::{chi_square_uniform, ks_uniform, UniformityTest};
use std::collections::BTreeMap;

/// SBC loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbcConfig {
    /// Number of prior draws (campaigns).
    pub draws: usize,
    /// Number of χ² bins.
    pub bins: usize,
    /// Base seed; draw `i` uses the cell stream at `rep = i`.
    pub seed: u64,
    /// Two-sided rejection threshold applied to both uniformity tests.
    pub alpha: f64,
}

impl Default for SbcConfig {
    fn default() -> Self {
        SbcConfig {
            draws: 200,
            bins: 10,
            seed: 0x5BC0_0001,
            // Family-wise false-positive control across the ~24 gated
            // tests of a grid sweep; fixed seeds make the verdicts
            // deterministic, so the margin only has to absorb genuine
            // approximation error (LAPL's skew deficit sits ~1e-4,
            // VB1's variance deficit below 1e-13).
            alpha: 1e-5,
        }
    }
}

/// SBC outcome for one (cell, method) pair.
#[derive(Debug, Clone)]
pub struct SbcResult {
    /// Method label.
    pub method: &'static str,
    /// Prior draws attempted.
    pub attempted: usize,
    /// PIT values of the true `ω` actually collected.
    pub pits_omega: Vec<f64>,
    /// PIT values of the true `β` actually collected.
    pub pits_beta: Vec<f64>,
    /// Draws that produced no posterior, keyed by reason.
    pub dropped: BTreeMap<String, usize>,
    /// χ² uniformity test on the ω PITs.
    pub chi2_omega: UniformityTest,
    /// KS uniformity test on the ω PITs.
    pub ks_omega: UniformityTest,
    /// χ² uniformity test on the β PITs.
    pub chi2_beta: UniformityTest,
    /// KS uniformity test on the β PITs.
    pub ks_beta: UniformityTest,
    /// `true` when both ω tests clear `alpha` (the gated statistic; the
    /// β tests are reported for diagnosis).
    pub calibrated_omega: bool,
}

/// Runs the SBC loop for one method on one Info cell.
///
/// # Panics
///
/// Panics if the cell's prior is flat — SBC cannot draw ground truths
/// from an improper prior; the caller must filter to Info cells.
pub fn run_sbc(cell: &GridCell, method: Method, config: &SbcConfig) -> SbcResult {
    assert!(
        cell.prior == PriorKind::Info,
        "SBC requires a proper prior (cell {})",
        cell.name()
    );
    let spec = cell.spec();
    let prior = cell.prior();
    let vb2_options = cell.vb2_options();
    let mut pits_omega = Vec::with_capacity(config.draws);
    let mut pits_beta = Vec::with_capacity(config.draws);
    let mut dropped: BTreeMap<String, usize> = BTreeMap::new();

    for draw in 0..config.draws {
        // One RNG per draw: truth first, then the campaign — so a fit
        // failure in draw i cannot shift the randomness of draw i+1.
        let mut rng = cell.rng(config.seed, draw as u64);
        let (omega_true, beta_true) =
            sample_prior(&prior, &mut rng).expect("Info prior is proper");
        let outcome = cell
            .simulate_with(omega_true, beta_true, &mut rng)
            .and_then(|data| method.fit(spec, prior, &data, &vb2_options));
        match outcome {
            Ok(posterior) => {
                pits_omega.push(posterior_cdf_omega(posterior.as_ref(), omega_true));
                pits_beta.push(posterior_cdf_beta(posterior.as_ref(), beta_true));
            }
            Err(reason) => {
                *dropped.entry(reason).or_insert(0) += 1;
            }
        }
    }

    let chi2_omega = chi_square_uniform(&pits_omega, config.bins);
    let ks_omega = ks_uniform(&pits_omega);
    let chi2_beta = chi_square_uniform(&pits_beta, config.bins);
    let ks_beta = ks_uniform(&pits_beta);
    SbcResult {
        method: method.label(),
        attempted: config.draws,
        calibrated_omega: chi2_omega.p_value >= config.alpha && ks_omega.p_value >= config.alpha,
        pits_omega,
        pits_beta,
        dropped,
        chi2_omega,
        ks_omega,
        chi2_beta,
        ks_beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbc_accounts_for_every_draw() {
        let cell = GridCell::smoke_grid()[0];
        let config = SbcConfig {
            draws: 12,
            bins: 4,
            ..SbcConfig::default()
        };
        let result = run_sbc(&cell, Method::Lapl, &config);
        let dropped: usize = result.dropped.values().sum();
        assert_eq!(result.pits_omega.len() + dropped, result.attempted);
        assert_eq!(result.pits_omega.len(), result.pits_beta.len());
        for &u in result.pits_omega.iter().chain(&result.pits_beta) {
            assert!((0.0..=1.0).contains(&u), "PIT {u} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "proper prior")]
    fn sbc_rejects_flat_prior_cells() {
        let mut cell = GridCell::smoke_grid()[0];
        cell.prior = PriorKind::NoInfo;
        run_sbc(&cell, Method::Vb2, &SbcConfig::default());
    }
}
