//! CLI driver for the conformance harness.
//!
//! ```text
//! conformance_report run [--smoke] [--label L] [--out FILE]
//!     [--reps N] [--sbc-draws N] [--calibration FILE]
//!     Sweep the grid, print the human summary, write/print the
//!     conformance/v1 JSON, exit 1 when the gate fails. With
//!     --calibration the dictionary is applied and the calibrated
//!     gate criteria are active.
//!
//! conformance_report golden [--full] [--bless] [--dir DIR]
//!     Check (or with --bless regenerate) the golden-oracle fixtures.
//!     Default checks the smoke fixture only; --full adds the
//!     all-scenario fixture with MCMC.
//!
//! conformance_report calibrate [--smoke] [--label L] [--reps N]
//!     [--out FILE | --bless | --check]
//!     Run the calibration learner over the grid. --bless writes the
//!     blessed dictionary under tests/golden/, --check re-learns and
//!     diffs against the blessed copy (the CI drift gate), --out
//!     writes anywhere, default prints to stdout.
//!
//! conformance_report monitor [--smoke] [--reps N] [--run-length N]
//!     Seeded false-alarm-rate check for the SPC monitoring charts:
//!     in-control traces per cell, both limit schemes, run-length
//!     alarms counted. With --smoke at default settings the counts
//!     are gated against the golden-pinned values.
//! ```

use nhpp_conformance::calibrate::{learn, CalibrateConfig};
use nhpp_conformance::coverage::CoverageConfig;
use nhpp_conformance::golden;
use nhpp_conformance::monitor::{self, FalseAlarmConfig};
use nhpp_conformance::report::{run, Grid};
use nhpp_conformance::sbc::SbcConfig;
use nhpp_vb::calibration::CalibrationDictionary;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

fn flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == name)?;
    if idx + 1 >= args.len() {
        eprintln!("error: {name} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

fn default_golden_dir() -> PathBuf {
    // crates/conformance → workspace root → tests/golden.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// The blessed dictionary's checked-in home.
fn default_dictionary_path() -> PathBuf {
    default_golden_dir().join("calibration_v1.json")
}

fn load_dictionary(path: &Path) -> CalibrationDictionary {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read calibration dictionary {}: {e}", path.display()));
    CalibrationDictionary::parse(&text)
        .unwrap_or_else(|e| panic!("invalid calibration dictionary {}: {e}", path.display()))
}

fn cmd_run(mut args: Vec<String>) -> ExitCode {
    let smoke = flag(&mut args, "--smoke");
    let label = flag_value(&mut args, "--label")
        .unwrap_or_else(|| format!("CONFORMANCE_{}", if smoke { "SMOKE" } else { "FULL" }));
    let out = flag_value(&mut args, "--out");
    let calibration = flag_value(&mut args, "--calibration")
        .map(|p| load_dictionary(Path::new(&p)));
    let mut coverage_config = CoverageConfig::default();
    let mut sbc_config = SbcConfig::default();
    if let Some(n) = flag_value(&mut args, "--reps") {
        coverage_config.replications = n.parse().expect("--reps takes an integer");
    }
    if let Some(n) = flag_value(&mut args, "--sbc-draws") {
        sbc_config.draws = n.parse().expect("--sbc-draws takes an integer");
    }
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments {args:?}");
        return ExitCode::from(2);
    }
    let grid = if smoke { Grid::Smoke } else { Grid::Full };
    let result = run(
        grid,
        &label,
        &coverage_config,
        &sbc_config,
        calibration.as_ref(),
    );
    eprint!("{}", result.summary());
    let json = result.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("writing the report file");
            eprintln!("report written to {path}");
        }
        None => print!("{json}"),
    }
    if result.gate.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn check_or_bless(path: &Path, entries: &[golden::GoldenEntry], bless: bool) -> bool {
    if bless {
        std::fs::create_dir_all(path.parent().expect("fixture path has a parent"))
            .expect("creating the golden directory");
        std::fs::write(path, golden::render(entries)).expect("writing the fixture");
        eprintln!("blessed {} ({} entries)", path.display(), entries.len());
        return true;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {}: {e} (run with --bless first?)", path.display());
            return false;
        }
    };
    let expected = match golden::parse(&text) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return false;
        }
    };
    let mismatches = golden::compare(&expected, entries);
    if mismatches.is_empty() {
        eprintln!("{}: {} entries ok", path.display(), expected.len());
        true
    } else {
        for m in &mismatches {
            eprintln!("{}: {m}", path.display());
        }
        false
    }
}

fn cmd_golden(mut args: Vec<String>) -> ExitCode {
    let bless = flag(&mut args, "--bless");
    let full = flag(&mut args, "--full");
    let dir = flag_value(&mut args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(default_golden_dir);
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments {args:?}");
        return ExitCode::from(2);
    }
    let mut ok = check_or_bless(&dir.join("smoke.txt"), &golden::smoke_entries(), bless);
    if full {
        ok &= check_or_bless(&dir.join("full.txt"), &golden::full_entries(), bless);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_calibrate(mut args: Vec<String>) -> ExitCode {
    let smoke = flag(&mut args, "--smoke");
    let bless = flag(&mut args, "--bless");
    let check = flag(&mut args, "--check");
    let out = flag_value(&mut args, "--out");
    let mut config = CalibrateConfig {
        label: format!("CALIBRATION_{}", if smoke { "SMOKE" } else { "FULL" }),
        ..CalibrateConfig::default()
    };
    if let Some(label) = flag_value(&mut args, "--label") {
        config.label = label;
    }
    if let Some(n) = flag_value(&mut args, "--reps") {
        config.replications = n.parse().expect("--reps takes an integer");
    }
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments {args:?}");
        return ExitCode::from(2);
    }
    if bless && check {
        eprintln!("error: --bless and --check are mutually exclusive");
        return ExitCode::from(2);
    }
    let grid = if smoke { Grid::Smoke } else { Grid::Full };
    let dict = learn(&grid.cells(), &config);
    let json = dict.to_json();
    eprintln!(
        "learned {} entries over the {} grid ({} reps/cell, seed {:#x})",
        dict.entries.len(),
        grid.name(),
        dict.replications,
        dict.seed
    );
    if check {
        // The drift gate: a re-learn from the current tree must agree
        // with the blessed dictionary entry-for-entry (the learner is
        // fully deterministic, so any difference is a real behaviour
        // change that needs an explicit re-bless).
        let path = default_dictionary_path();
        let blessed = load_dictionary(&path);
        let mut drift = Vec::new();
        for (key, entry) in &dict.entries {
            match blessed.entries.get(key) {
                None => drift.push(format!("{key}: missing from blessed dictionary")),
                Some(b) if b.factor != entry.factor => drift.push(format!(
                    "{key}: factor {} (blessed {})",
                    entry.factor, b.factor
                )),
                _ => {}
            }
        }
        for key in blessed.entries.keys() {
            if !dict.entries.contains_key(key) {
                drift.push(format!("{key}: no longer learned"));
            }
        }
        return if drift.is_empty() {
            eprintln!("{}: no drift", path.display());
            ExitCode::SUCCESS
        } else {
            for d in &drift {
                eprintln!("{}: {d}", path.display());
            }
            eprintln!("re-bless with: conformance_report calibrate --bless");
            ExitCode::FAILURE
        };
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("writing the dictionary");
            eprintln!("dictionary written to {path}");
        }
        None if bless => {
            let path = default_dictionary_path();
            std::fs::create_dir_all(path.parent().expect("fixture path has a parent"))
                .expect("creating the golden directory");
            std::fs::write(&path, &json).expect("writing the dictionary");
            eprintln!("blessed {}", path.display());
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn cmd_monitor(mut args: Vec<String>) -> ExitCode {
    let smoke = flag(&mut args, "--smoke");
    let mut config = FalseAlarmConfig::default();
    if let Some(n) = flag_value(&mut args, "--reps") {
        config.replications = n.parse().expect("--reps takes an integer");
    }
    if let Some(n) = flag_value(&mut args, "--run-length") {
        config.run_length = n.parse().expect("--run-length takes an integer");
    }
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments {args:?}");
        return ExitCode::from(2);
    }
    let results = monitor::run_false_alarm(smoke, &config);
    eprintln!(
        "SPC false-alarm check ({} grid, {} reps/cell, run length {}, seed {:#x})",
        if smoke { "smoke" } else { "full" },
        config.replications,
        config.run_length,
        config.seed
    );
    eprintln!(
        "{:<22} {:>6} {:>7} {:>9} {:>9} {:>10} {:>10}",
        "cell", "traces", "points", "os-ooc", "mmle-ooc", "os-alarms", "mmle-alarms"
    );
    for r in &results {
        eprintln!(
            "{:<22} {:>6} {:>7} {:>9} {:>9} {:>10} {:>10}",
            r.cell,
            r.traces,
            r.os.points,
            r.os.deterioration + r.os.improvement,
            r.mmle.deterioration + r.mmle.improvement,
            r.os.alarms,
            r.mmle.alarms
        );
    }
    // The golden gate pins the smoke tier; custom tiers and settings
    // only report.
    if smoke && config == FalseAlarmConfig::default() {
        let failures = monitor::gate_against_golden(&results);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("gate: {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("gate: alarm counts match the pinned golden values");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: conformance_report <run|golden|calibrate|monitor> [options]");
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "run" => cmd_run(args),
        "golden" => cmd_golden(args),
        "calibrate" => cmd_calibrate(args),
        "monitor" => cmd_monitor(args),
        other => {
            eprintln!(
                "unknown subcommand {other:?}; expected `run`, `golden`, `calibrate` or `monitor`"
            );
            ExitCode::from(2)
        }
    }
}
