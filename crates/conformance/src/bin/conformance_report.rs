//! CLI driver for the conformance harness.
//!
//! ```text
//! conformance_report run [--smoke] [--label L] [--out FILE]
//!     [--reps N] [--sbc-draws N]
//!     Sweep the grid, print the human summary, write/print the
//!     conformance/v1 JSON, exit 1 when the gate fails.
//!
//! conformance_report golden [--full] [--bless] [--dir DIR]
//!     Check (or with --bless regenerate) the golden-oracle fixtures.
//!     Default checks the smoke fixture only; --full adds the
//!     all-scenario fixture with MCMC.
//! ```

use nhpp_conformance::coverage::CoverageConfig;
use nhpp_conformance::golden;
use nhpp_conformance::report::{run, Grid};
use nhpp_conformance::sbc::SbcConfig;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

fn flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == name)?;
    if idx + 1 >= args.len() {
        eprintln!("error: {name} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

fn default_golden_dir() -> PathBuf {
    // crates/conformance → workspace root → tests/golden.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn cmd_run(mut args: Vec<String>) -> ExitCode {
    let smoke = flag(&mut args, "--smoke");
    let label = flag_value(&mut args, "--label")
        .unwrap_or_else(|| format!("CONFORMANCE_{}", if smoke { "SMOKE" } else { "FULL" }));
    let out = flag_value(&mut args, "--out");
    let mut coverage_config = CoverageConfig::default();
    let mut sbc_config = SbcConfig::default();
    if let Some(n) = flag_value(&mut args, "--reps") {
        coverage_config.replications = n.parse().expect("--reps takes an integer");
    }
    if let Some(n) = flag_value(&mut args, "--sbc-draws") {
        sbc_config.draws = n.parse().expect("--sbc-draws takes an integer");
    }
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments {args:?}");
        return ExitCode::from(2);
    }
    let grid = if smoke { Grid::Smoke } else { Grid::Full };
    let result = run(grid, &label, &coverage_config, &sbc_config);
    eprint!("{}", result.summary());
    let json = result.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("writing the report file");
            eprintln!("report written to {path}");
        }
        None => print!("{json}"),
    }
    if result.gate.pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn check_or_bless(path: &Path, entries: &[golden::GoldenEntry], bless: bool) -> bool {
    if bless {
        std::fs::create_dir_all(path.parent().expect("fixture path has a parent"))
            .expect("creating the golden directory");
        std::fs::write(path, golden::render(entries)).expect("writing the fixture");
        eprintln!("blessed {} ({} entries)", path.display(), entries.len());
        return true;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {}: {e} (run with --bless first?)", path.display());
            return false;
        }
    };
    let expected = match golden::parse(&text) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return false;
        }
    };
    let mismatches = golden::compare(&expected, entries);
    if mismatches.is_empty() {
        eprintln!("{}: {} entries ok", path.display(), expected.len());
        true
    } else {
        for m in &mismatches {
            eprintln!("{}: {m}", path.display());
        }
        false
    }
}

fn cmd_golden(mut args: Vec<String>) -> ExitCode {
    let bless = flag(&mut args, "--bless");
    let full = flag(&mut args, "--full");
    let dir = flag_value(&mut args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(default_golden_dir);
    if !args.is_empty() {
        eprintln!("error: unrecognised arguments {args:?}");
        return ExitCode::from(2);
    }
    let mut ok = check_or_bless(&dir.join("smoke.txt"), &golden::smoke_entries(), bless);
    if full {
        ok &= check_or_bless(&dir.join("full.txt"), &golden::full_entries(), bless);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: conformance_report <run|golden> [options]");
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "run" => cmd_run(args),
        "golden" => cmd_golden(args),
        other => {
            eprintln!("unknown subcommand {other:?}; expected `run` or `golden`");
            ExitCode::from(2)
        }
    }
}
