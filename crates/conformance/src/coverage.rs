//! Generalized coverage-calibration runner over the scenario grid.
//!
//! For each grid cell this fits every method on `replications` seeded
//! campaigns and tallies how often the nominal credible interval for
//! `ω` contains the generating truth, with binomial standard errors and
//! exhaustive per-method failure accounting (reusing the bench
//! [`Tally`], so `attempted == fitted + dropped` always holds).
//!
//! On Info cells the truth is *drawn from the prior* each campaign:
//! that is the regime in which an exactly calibrated Bayesian interval
//! has exactly nominal marginal coverage, so the ±3·se band is a real
//! two-sided gate. (With a truth pinned at the prior mean even an exact
//! posterior over-covers — the truth then sits at the posterior's
//! centre of mass.) NoInfo cells have no generative prior, so they use
//! the cell's fixed truth and are reported rather than gated.
//!
//! The verdict bands are ±3 binomial standard errors around the nominal
//! level: a calibrated method must land inside, and a method whose rate
//! falls *below* the lower band is flagged `under_covering` — the
//! paper's VB1 story, made mechanical.

use crate::methods::Method;
use crate::scenario::{sample_prior, GridCell};
use crate::stats::binomial_se;
use nhpp_bench::coverage::Tally;

/// Coverage-runner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageConfig {
    /// Campaigns per cell.
    pub replications: usize,
    /// Nominal interval level.
    pub level: f64,
    /// Base seed; campaign `i` uses the cell stream at `rep = i`,
    /// offset so coverage and SBC never share campaigns.
    pub seed: u64,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            replications: 200,
            level: 0.95,
            seed: 0xC0_7E41,
        }
    }
}

/// Coverage outcome for one (cell, method) pair.
#[derive(Debug, Clone)]
pub struct MethodCoverage {
    /// Method label.
    pub method: &'static str,
    /// The exhaustive campaign accounting.
    pub tally: Tally,
    /// Empirical coverage rate among fitted campaigns (NaN if none).
    pub rate: f64,
    /// Binomial standard error of the rate at the nominal level.
    pub se: f64,
    /// `|rate − level| ≤ 3·se` (the calibrated-method gate).
    pub within_band: bool,
    /// `rate < level − 3·se` (the VB1 flag).
    pub under_covering: bool,
}

/// Runs the coverage study for every method on one cell.
pub fn run_cell_coverage(cell: &GridCell, config: &CoverageConfig) -> Vec<MethodCoverage> {
    let spec = cell.spec();
    let prior = cell.prior();
    let vb2_options = cell.vb2_options();
    let methods = Method::all();
    let mut tallies: Vec<Tally> = methods.iter().map(|_| Tally::default()).collect();

    for rep in 0..config.replications {
        // One RNG per campaign, truth drawn before the trace, so the
        // stream layout matches SBC's and campaigns are independently
        // reproducible.
        let mut rng = cell.rng(config.seed, rep as u64);
        let (omega_true, beta_true) = sample_prior(&prior, &mut rng)
            .unwrap_or((cell.omega_true(), cell.beta_true()));
        match cell.simulate_with(omega_true, beta_true, &mut rng) {
            Ok(data) => {
                for (method, tally) in methods.iter().zip(tallies.iter_mut()) {
                    tally.record(
                        method
                            .fit(spec, prior, &data, &vb2_options)
                            .map(|p| p.credible_interval_omega(config.level)),
                        omega_true,
                    );
                }
            }
            Err(reason) => {
                // An unusable campaign counts against every method's
                // denominator, with its reason, instead of vanishing.
                for tally in tallies.iter_mut() {
                    tally.record(Err(reason.clone()), omega_true);
                }
            }
        }
    }

    methods
        .iter()
        .zip(tallies)
        .map(|(method, tally)| {
            let rate = tally.rate();
            let se = binomial_se(config.level, tally.fitted);
            let deviation = rate - config.level;
            MethodCoverage {
                method: method.label(),
                rate,
                se,
                within_band: tally.fitted > 0 && deviation.abs() <= 3.0 * se,
                under_covering: tally.fitted > 0 && deviation < -3.0 * se,
                tally,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_coverage_accounts_for_every_campaign() {
        let cell = GridCell::smoke_grid()[0];
        let config = CoverageConfig {
            replications: 25,
            ..CoverageConfig::default()
        };
        let results = run_cell_coverage(&cell, &config);
        assert_eq!(results.len(), 4);
        for mc in &results {
            assert_eq!(mc.tally.attempted, config.replications, "{}", mc.method);
            assert_eq!(
                mc.tally.fitted + mc.tally.dropped_total(),
                mc.tally.attempted,
                "{}",
                mc.method
            );
            assert!(!(mc.within_band && mc.under_covering), "{}", mc.method);
        }
    }
}
