//! Generalized coverage-calibration runner over the scenario grid.
//!
//! For each grid cell this fits every method on `replications` seeded
//! campaigns and tallies how often the nominal credible interval for
//! `ω` contains the generating truth, with binomial standard errors and
//! exhaustive per-method failure accounting (reusing the bench
//! [`Tally`], so `attempted == fitted + dropped` always holds).
//!
//! On Info cells the truth is *drawn from the prior* each campaign:
//! that is the regime in which an exactly calibrated Bayesian interval
//! has exactly nominal marginal coverage, so the ±3·se band is a real
//! two-sided gate. (With a truth pinned at the prior mean even an exact
//! posterior over-covers — the truth then sits at the posterior's
//! centre of mass.) NoInfo cells have no generative prior, so they use
//! the cell's fixed truth and are reported rather than gated.
//!
//! The verdict bands are ±3 binomial standard errors around the nominal
//! level: a calibrated method must land inside, and a method whose rate
//! falls *below* the lower band is flagged `under_covering` — the
//! paper's VB1 story, made mechanical.

use crate::methods::Method;
use crate::scenario::{sample_prior, GridCell};
use crate::stats::binomial_se;
use nhpp_bench::coverage::Tally;
use nhpp_vb::calibration::{Calibration, CalibrationDictionary};

/// Coverage-runner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageConfig {
    /// Campaigns per cell.
    pub replications: usize,
    /// Nominal interval level.
    pub level: f64,
    /// Base seed; campaign `i` uses the cell stream at `rep = i`,
    /// offset so coverage and SBC never share campaigns.
    pub seed: u64,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            replications: 200,
            level: 0.95,
            seed: 0xC0_7E41,
        }
    }
}

/// Coverage of the *calibrated* interval for one (cell, method) pair,
/// present when a calibration dictionary supplied a factor for the
/// cell's regime.
#[derive(Debug, Clone)]
pub struct CalibratedCoverage {
    /// The dictionary factor that was applied.
    pub factor: f64,
    /// Campaign accounting for the calibrated interval (same attempted
    /// and fitted counts as the raw tally — calibration never changes
    /// which campaigns fit, only which cover).
    pub tally: Tally,
    /// Empirical calibrated coverage rate (NaN if none fitted).
    pub rate: f64,
    /// Binomial standard error at the nominal level.
    pub se: f64,
    /// `|rate − level| ≤ 3·se` — what the calibrated gate checks.
    pub within_band: bool,
}

/// Coverage outcome for one (cell, method) pair.
#[derive(Debug, Clone)]
pub struct MethodCoverage {
    /// Method label.
    pub method: &'static str,
    /// The exhaustive campaign accounting.
    pub tally: Tally,
    /// Empirical coverage rate among fitted campaigns (NaN if none).
    pub rate: f64,
    /// Binomial standard error of the rate at the nominal level.
    pub se: f64,
    /// `|rate − level| ≤ 3·se` (the calibrated-method gate).
    pub within_band: bool,
    /// `rate < level − 3·se` (the VB1 flag).
    pub under_covering: bool,
    /// Calibrated-interval coverage, when a dictionary entry applied.
    pub calibrated: Option<CalibratedCoverage>,
}

/// Runs the coverage study for every method on one cell. With a
/// calibration dictionary, every campaign additionally tallies the
/// calibrated interval (spread rescaled about the posterior median by
/// the regime's learned factor) against the same truth — the held-out
/// evidence behind the calibrated conformance gate.
pub fn run_cell_coverage(
    cell: &GridCell,
    config: &CoverageConfig,
    calibration: Option<&CalibrationDictionary>,
) -> Vec<MethodCoverage> {
    let spec = cell.spec();
    let prior = cell.prior();
    let vb2_options = cell.vb2_options();
    let methods = Method::all();
    let factors: Vec<Option<Calibration>> = methods
        .iter()
        .map(|m| {
            calibration.and_then(|dict| {
                dict.calibration(cell.model_key(), cell.data_key(), cell.prior_key(), m.label())
            })
        })
        .collect();
    let mut tallies: Vec<Tally> = methods.iter().map(|_| Tally::default()).collect();
    let mut cal_tallies: Vec<Tally> = methods.iter().map(|_| Tally::default()).collect();

    for rep in 0..config.replications {
        // One RNG per campaign, truth drawn before the trace, so the
        // stream layout matches SBC's and campaigns are independently
        // reproducible.
        let mut rng = cell.rng(config.seed, rep as u64);
        let (omega_true, beta_true) = sample_prior(&prior, &mut rng)
            .unwrap_or((cell.omega_true(), cell.beta_true()));
        match cell.simulate_with(omega_true, beta_true, &mut rng) {
            Ok(data) => {
                for (i, (method, tally)) in methods.iter().zip(tallies.iter_mut()).enumerate() {
                    match method.fit(spec, prior, &data, &vb2_options) {
                        Ok(p) => {
                            let raw = p.credible_interval_omega(config.level);
                            if let Some(cal) = &factors[i] {
                                cal_tallies[i].record(
                                    Ok(cal.interval(p.quantile_omega(0.5), raw, 0.0)),
                                    omega_true,
                                );
                            }
                            tally.record(Ok(raw), omega_true);
                        }
                        Err(reason) => {
                            if factors[i].is_some() {
                                cal_tallies[i].record(Err(reason.clone()), omega_true);
                            }
                            tally.record(Err(reason), omega_true);
                        }
                    }
                }
            }
            Err(reason) => {
                // An unusable campaign counts against every method's
                // denominator, with its reason, instead of vanishing.
                for (i, tally) in tallies.iter_mut().enumerate() {
                    if factors[i].is_some() {
                        cal_tallies[i].record(Err(reason.clone()), omega_true);
                    }
                    tally.record(Err(reason.clone()), omega_true);
                }
            }
        }
    }

    methods
        .iter()
        .zip(tallies)
        .zip(factors.iter().zip(cal_tallies))
        .map(|((method, tally), (factor, cal_tally))| {
            let rate = tally.rate();
            let se = binomial_se(config.level, tally.fitted);
            let deviation = rate - config.level;
            let calibrated = factor.map(|cal| {
                let rate = cal_tally.rate();
                let se = binomial_se(config.level, cal_tally.fitted);
                CalibratedCoverage {
                    factor: cal.factor,
                    rate,
                    se,
                    within_band: cal_tally.fitted > 0 && (rate - config.level).abs() <= 3.0 * se,
                    tally: cal_tally,
                }
            });
            MethodCoverage {
                method: method.label(),
                rate,
                se,
                within_band: tally.fitted > 0 && deviation.abs() <= 3.0 * se,
                under_covering: tally.fitted > 0 && deviation < -3.0 * se,
                tally,
                calibrated,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_coverage_accounts_for_every_campaign() {
        let cell = GridCell::smoke_grid()[0];
        let config = CoverageConfig {
            replications: 25,
            ..CoverageConfig::default()
        };
        let results = run_cell_coverage(&cell, &config, None);
        assert_eq!(results.len(), 4);
        for mc in &results {
            assert_eq!(mc.tally.attempted, config.replications, "{}", mc.method);
            assert_eq!(
                mc.tally.fitted + mc.tally.dropped_total(),
                mc.tally.attempted,
                "{}",
                mc.method
            );
            assert!(!(mc.within_band && mc.under_covering), "{}", mc.method);
            assert!(mc.calibrated.is_none(), "{}", mc.method);
        }
    }

    #[test]
    fn calibrated_tallies_share_the_raw_denominator() {
        use nhpp_vb::calibration::{dictionary_key, CalibrationEntry};
        let cell = GridCell::smoke_grid()[0];
        let config = CoverageConfig {
            replications: 12,
            ..CoverageConfig::default()
        };
        let mut entries = std::collections::BTreeMap::new();
        // A generous widening for VB1 only; other methods stay raw.
        entries.insert(
            dictionary_key(cell.model_key(), cell.data_key(), cell.prior_key(), "VB1"),
            CalibrationEntry {
                factor: 3.0,
                raw_rate: 0.8,
                calibrated_rate: 0.95,
                fitted: 100,
            },
        );
        let dict = CalibrationDictionary {
            label: "CAL_UNIT".to_string(),
            seed: 1,
            replications: 100,
            level: config.level,
            entries,
        };
        let results = run_cell_coverage(&cell, &config, Some(&dict));
        for mc in &results {
            if mc.method == "VB1" {
                let cal = mc.calibrated.as_ref().expect("dictionary entry applied");
                assert_eq!(cal.factor, 3.0);
                assert_eq!(cal.tally.attempted, mc.tally.attempted);
                assert_eq!(cal.tally.fitted, mc.tally.fitted);
                // Widening can only gain coverage.
                assert!(cal.tally.covered >= mc.tally.covered);
            } else {
                assert!(mc.calibrated.is_none(), "{}", mc.method);
            }
        }
    }
}
