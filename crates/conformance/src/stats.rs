//! Statistical tests used by the conformance gates.
//!
//! Everything here is classical and closed-form: χ² and
//! Kolmogorov–Smirnov uniformity tests for SBC PIT values, and the
//! binomial standard error used to band empirical coverage rates. No
//! randomness — the tests are pure functions of their inputs, so
//! seeded campaigns yield bit-identical verdicts.

use nhpp_special::gamma_q;

/// Outcome of a goodness-of-fit test against Uniform(0, 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformityTest {
    /// The test statistic (χ² value or the KS distance `D`).
    pub statistic: f64,
    /// The p-value under the uniform null.
    pub p_value: f64,
}

/// Pearson χ² uniformity test with `bins` equal-width bins.
///
/// The p-value is the upper-tail χ² probability with `bins − 1` degrees
/// of freedom, `Q((B−1)/2, χ²/2)`. Values outside `[0, 1]` are clamped
/// into the extreme bins (they indicate a CDF evaluation edge, not a
/// missing observation).
pub fn chi_square_uniform(pits: &[f64], bins: usize) -> UniformityTest {
    assert!(bins >= 2, "need at least two bins");
    if pits.is_empty() {
        return UniformityTest {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let mut counts = vec![0usize; bins];
    for &u in pits {
        let idx = ((u * bins as f64).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    let expected = pits.len() as f64 / bins as f64;
    let statistic: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    UniformityTest {
        statistic,
        p_value: gamma_q((bins as f64 - 1.0) / 2.0, statistic / 2.0),
    }
}

/// One-sample Kolmogorov–Smirnov test against Uniform(0, 1).
///
/// Uses the asymptotic Kolmogorov distribution with Stephens' finite-`n`
/// correction `λ = (√n + 0.12 + 0.11/√n) · D`; accurate enough for the
/// `n ≥ 50` campaigns the harness runs.
pub fn ks_uniform(pits: &[f64]) -> UniformityTest {
    let n = pits.len();
    if n == 0 {
        return UniformityTest {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let mut sorted: Vec<f64> = pits.iter().map(|&u| u.clamp(0.0, 1.0)).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("PITs are finite"));
    let n_f = n as f64;
    let mut d: f64 = 0.0;
    for (i, &u) in sorted.iter().enumerate() {
        let above = (i as f64 + 1.0) / n_f - u;
        let below = u - i as f64 / n_f;
        d = d.max(above).max(below);
    }
    let lambda = (n_f.sqrt() + 0.12 + 0.11 / n_f.sqrt()) * d;
    UniformityTest {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    }
}

/// The Kolmogorov survival function `P(K > λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Binomial standard error of an empirical rate whose true value is
/// `level`, over `n` trials.
pub fn binomial_se(level: f64, n: usize) -> f64 {
    if n == 0 {
        return f64::NAN;
    }
    (level * (1.0 - level) / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic low-discrepancy stand-in for uniform PITs.
    fn golden_ratio_sequence(n: usize) -> Vec<f64> {
        let phi = 0.618_033_988_749_894_9_f64;
        (1..=n).map(|i| (i as f64 * phi).fract()).collect()
    }

    #[test]
    fn uniform_input_passes_both_tests() {
        let pits = golden_ratio_sequence(200);
        let chi = chi_square_uniform(&pits, 10);
        assert!(chi.p_value > 0.05, "chi2 p={}", chi.p_value);
        let ks = ks_uniform(&pits);
        assert!(ks.p_value > 0.05, "ks p={}", ks.p_value);
        assert!(ks.statistic < 0.05);
    }

    #[test]
    fn concentrated_input_fails_both_tests() {
        // Everything piled into [0.4, 0.6] — a grossly over-confident
        // posterior's PIT profile.
        let pits: Vec<f64> = golden_ratio_sequence(200)
            .iter()
            .map(|u| 0.4 + 0.2 * u)
            .collect();
        let chi = chi_square_uniform(&pits, 10);
        assert!(chi.p_value < 1e-10, "chi2 p={}", chi.p_value);
        let ks = ks_uniform(&pits);
        assert!(ks.p_value < 1e-10, "ks p={}", ks.p_value);
    }

    #[test]
    fn edge_cases_are_tolerated() {
        assert_eq!(chi_square_uniform(&[], 10).p_value, 1.0);
        assert_eq!(ks_uniform(&[]).p_value, 1.0);
        // Out-of-range PITs clamp into the extreme bins.
        let chi = chi_square_uniform(&[-0.1, 1.1, 0.5], 2);
        assert!(chi.statistic.is_finite());
        let se = binomial_se(0.95, 200);
        assert!((se - 0.0154).abs() < 1e-3);
        assert!(binomial_se(0.95, 0).is_nan());
    }
}
