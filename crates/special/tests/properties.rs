//! Property-based tests for the special-function substrate.

use nhpp_special::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// ln Γ satisfies the recurrence ln Γ(x+1) = ln Γ(x) + ln x.
    #[test]
    fn ln_gamma_recurrence(x in 1e-3f64..1e5) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = ln_gamma(x) + x.ln();
        prop_assert!((lhs - rhs).abs() <= 1e-10 * lhs.abs().max(1.0));
    }

    /// Digamma is the derivative of ln Γ (finite-difference check).
    #[test]
    fn digamma_is_lngamma_derivative(x in 0.1f64..1e3) {
        let h = 1e-5 * x.max(1.0);
        let fd = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
        prop_assert!((digamma(x) - fd).abs() <= 1e-4 * fd.abs().max(1.0));
    }

    /// Trigamma is positive and decreasing on (0, ∞).
    #[test]
    fn trigamma_positive_decreasing(x in 0.05f64..1e3) {
        let t1 = trigamma(x);
        let t2 = trigamma(x * 1.5);
        prop_assert!(t1 > 0.0 && t2 > 0.0 && t2 < t1);
    }

    /// P(a, x) + Q(a, x) = 1 over a broad parameter box.
    #[test]
    fn incgamma_complementarity(a in 1e-2f64..1e4, frac in 1e-3f64..5.0) {
        let x = a * frac;
        let s = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-11, "a={a}, x={x}, s={s}");
    }

    /// P is monotone nondecreasing in x.
    #[test]
    fn incgamma_monotone(a in 1e-2f64..1e3, x in 1e-6f64..1e4, dx in 1e-6f64..10.0) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-14);
    }

    /// gamma_p_inv inverts gamma_p.
    #[test]
    fn incgamma_inverse_roundtrip(a in 1e-1f64..1e4, p in 1e-8f64..1.0f64) {
        prop_assume!(p < 1.0 - 1e-12);
        let x = gamma_p_inv(a, p);
        prop_assert!(x.is_finite() && x >= 0.0);
        let back = gamma_p(a, x);
        prop_assert!((back - p).abs() < 1e-8, "a={a}, p={p}, x={x}, back={back}");
    }

    /// ln-space versions agree with linear versions when no underflow occurs.
    #[test]
    fn ln_incgamma_consistent(a in 1e-1f64..1e3, frac in 0.05f64..3.0) {
        let x = a * frac;
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        if p > 1e-280 {
            prop_assert!((ln_gamma_p(a, x) - p.ln()).abs() < 1e-8 * p.ln().abs().max(1.0));
        }
        if q > 1e-280 {
            prop_assert!((ln_gamma_q(a, x) - q.ln()).abs() < 1e-8 * q.ln().abs().max(1.0));
        }
    }

    /// erf/erfc symmetry and complementarity.
    #[test]
    fn erf_properties(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    /// Normal CDF/quantile round trip.
    #[test]
    fn norm_roundtrip(p in 1e-10f64..1.0f64) {
        prop_assume!(p < 1.0 - 1e-12);
        let z = norm_ppf(p);
        prop_assert!((norm_cdf(z) - p).abs() < 1e-10);
    }

    /// log_sum_exp equals the naive sum when safe, and is permutation- and
    /// shift-equivariant.
    #[test]
    fn log_sum_exp_properties(mut v in prop::collection::vec(-50.0f64..50.0, 1..20), shift in -1e4f64..1e4) {
        let naive = v.iter().map(|x| x.exp()).sum::<f64>().ln();
        let lse = log_sum_exp(&v);
        prop_assert!((lse - naive).abs() < 1e-9 * naive.abs().max(1.0));

        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        prop_assert!((log_sum_exp(&shifted) - (lse + shift)).abs() < 1e-8 * (lse + shift).abs().max(1.0));

        v.reverse();
        prop_assert!((log_sum_exp(&v) - lse).abs() < 1e-12);
    }
}

// Properties of the recurrence kernels used by the VB2 component sweep
// (see `nhpp_special::recurrence`). The 1e-12 mixed relative/absolute
// bound is the agreement the sweep relies on: the forward-recurrence
// increment `a·ln x − x − ln Γ(a+1)` cancels terms of magnitude
// ~`a·ln a`, so a few hundred ulps of absolute error are inherent at
// large shapes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The ln Γ ladder tracks direct evaluations across many steps and
    /// re-anchor periods, over the full shape range the sweep visits.
    #[test]
    fn ladder_agrees_with_direct_ln_gamma(x0 in 0.05f64..20_000.0, steps in 1usize..200) {
        let mut ladder = LnGammaLadder::new(x0);
        for _ in 0..steps {
            ladder.advance();
        }
        let direct = ln_gamma(ladder.x());
        prop_assert!(
            (ladder.value() - direct).abs() <= 1e-12 * direct.abs().max(1.0),
            "x0={x0}, steps={steps}: ladder={}, direct={direct}", ladder.value()
        );
    }

    /// One Q-step from a direct base agrees with the direct value at
    /// the incremented shape.
    #[test]
    fn q_step_agrees_with_direct(a in 0.05f64..20_000.0, frac in 1e-3f64..5.0) {
        let x = a * frac;
        let gln1 = ln_gamma(a + 1.0);
        let stepped = ln_gamma_q_step(a, x, x.ln(), ln_gamma_q(a, x), gln1);
        let direct = ln_gamma_q(a + 1.0, x);
        // 1e-12 relative is the sweep's agreement bound; the second
        // term is the inherent rounding of the cancelled increment
        // terms (`a·ln x`, `x`, `ln Γ(a+1)`), which dominates only at
        // shapes in the thousands.
        let tol = 1e-12 * direct.abs().max(1.0)
            + 32.0 * f64::EPSILON * (a * x.ln().abs() + x + gln1.abs());
        prop_assert!(
            (stepped - direct).abs() <= tol,
            "a={a}, x={x}: stepped={stepped}, direct={direct}"
        );
    }

    /// One P-step (including its cancellation-guard fallback) agrees
    /// with the direct value at the incremented shape.
    #[test]
    fn p_step_agrees_with_direct(a in 0.05f64..20_000.0, frac in 1e-3f64..5.0) {
        let x = a * frac;
        let gln1 = ln_gamma(a + 1.0);
        let stepped = ln_gamma_p_step(a, x, x.ln(), ln_gamma_p(a, x), gln1);
        let direct = ln_gamma_p(a + 1.0, x);
        let tol = 1e-12 * direct.abs().max(1.0)
            + 32.0 * f64::EPSILON * (a * x.ln().abs() + x + gln1.abs());
        prop_assert!(
            (stepped - direct).abs() <= tol,
            "a={a}, x={x}: stepped={stepped}, direct={direct}"
        );
    }

    /// The paired evaluation is bitwise the two individual ones.
    #[test]
    fn pq_given_pair_is_bitwise_consistent(a in 0.05f64..20_000.0, frac in 1e-3f64..5.0) {
        let x = a * frac;
        let gln = ln_gamma(a);
        let (ln_p, ln_q) = ln_gamma_pq_given(a, x, gln);
        prop_assert_eq!(ln_p.to_bits(), ln_gamma_p_given(a, x, gln).to_bits());
        prop_assert_eq!(ln_q.to_bits(), ln_gamma_q_given(a, x, gln).to_bits());
    }

    /// The four-lane P-step is bitwise the scalar P-step on every lane —
    /// including the cancellation-guard *decision* (recurrence vs direct
    /// re-derivation), which must not depend on the lane width, across
    /// the full shape range out to the extreme-scale seam.
    #[test]
    fn p_step_x4_guard_decisions_are_bitwise_scalar(
        a in 0.05f64..20_000.0,
        fracs in (1e-3f64..5.0, 1e-3f64..5.0, 1e-3f64..5.0, 1e-3f64..5.0)
    ) {
        let gln1 = ln_gamma(a + 1.0);
        let fracs = [fracs.0, fracs.1, fracs.2, fracs.3];
        let xs: [f64; 4] = std::array::from_fn(|i| a * fracs[i]);
        let lps: [f64; 4] = std::array::from_fn(|i| ln_gamma_p(a, xs[i]));
        let x = F64x4(xs);
        let wide = ln_gamma_p_step_x4(F64x4::splat(a), x, x.ln(), F64x4(lps), F64x4::splat(gln1));
        for i in 0..WIDE_LANES {
            let scalar = ln_gamma_p_step(a, xs[i], xs[i].ln(), lps[i], gln1);
            prop_assert!(
                wide.0[i].to_bits() == scalar.to_bits(),
                "a={}, x={}: wide={}, scalar={}", a, xs[i], wide.0[i], scalar
            );
        }
    }

    /// The four-lane Q-step agrees with the scalar Q-step within the
    /// same cancelled-increment tolerance the sweep relies on, across
    /// the full shape range (the wide path trades bitwise identity for
    /// lane throughput here — the sweep pins which one ran).
    #[test]
    fn q_step_x4_tracks_scalar(
        a in 0.05f64..20_000.0,
        fracs in (1e-3f64..5.0, 1e-3f64..5.0, 1e-3f64..5.0, 1e-3f64..5.0)
    ) {
        let gln1 = ln_gamma(a + 1.0);
        let fracs = [fracs.0, fracs.1, fracs.2, fracs.3];
        let xs: [f64; 4] = std::array::from_fn(|i| a * fracs[i]);
        let lqs: [f64; 4] = std::array::from_fn(|i| ln_gamma_q(a, xs[i]));
        let x = F64x4(xs);
        let wide = ln_gamma_q_step_x4(F64x4::splat(a), x, x.ln(), F64x4(lqs), F64x4::splat(gln1));
        for i in 0..WIDE_LANES {
            let scalar = ln_gamma_q_step(a, xs[i], xs[i].ln(), lqs[i], gln1);
            let tol = 1e-12 * scalar.abs().max(1.0)
                + 32.0 * f64::EPSILON * (a * xs[i].ln().abs() + xs[i] + gln1.abs());
            prop_assert!(
                (wide.0[i] - scalar).abs() <= tol,
                "a={}, x={}: wide={}, scalar={}", a, xs[i], wide.0[i], scalar
            );
        }
    }

    /// The streaming accumulator matches the batch log_sum_exp to high
    /// accuracy in any order.
    #[test]
    fn streaming_log_sum_exp_matches_batch(v in prop::collection::vec(-700.0f64..700.0, 0..40)) {
        let batch = log_sum_exp(&v);
        let mut acc = StreamingLogSumExp::new();
        for &x in &v {
            acc.push(x);
        }
        let streamed = acc.value();
        if v.is_empty() {
            prop_assert_eq!(streamed, f64::NEG_INFINITY);
        } else {
            prop_assert!(
                (streamed - batch).abs() <= 1e-12 * batch.abs().max(1.0),
                "streamed={streamed}, batch={batch}"
            );
        }
    }
}

/// Pins the cancellation-guard boundary of `ln_gamma_p_step`: walking a
/// fixed shape from the deep lower tail (`x ≪ a`, direct-fallback
/// territory) through `x ≈ a` (recurrence territory) must produce
/// bitwise-identical values on the scalar and four-lane paths at every
/// point, and the sweep must actually cross the guard (both branches
/// exercised). A future retune of the guard constant that made the two
/// paths disagree on when to re-derive would trip this immediately.
#[test]
fn p_step_guard_boundary_is_bitwise_pinned_across_lanes() {
    for &a in &[0.5, 30.0, 500.0, 5000.0] {
        let gln1 = ln_gamma(a + 1.0);
        let mut saw_guard = false; // direct-fallback branch taken
        let mut saw_recur = false; // recurrence branch kept
        let fracs: Vec<f64> = (0..64).map(|i| 1e-3 * 8_000f64.powf(i as f64 / 63.0)).collect();
        for chunk in fracs.chunks(4) {
            let xs: [f64; 4] = std::array::from_fn(|i| a * chunk[i]);
            let lps: [f64; 4] = std::array::from_fn(|i| ln_gamma_p(a, xs[i]));
            let x = F64x4(xs);
            let wide =
                ln_gamma_p_step_x4(F64x4::splat(a), x, x.ln(), F64x4(lps), F64x4::splat(gln1));
            for i in 0..WIDE_LANES {
                let scalar = ln_gamma_p_step(a, xs[i], xs[i].ln(), lps[i], gln1);
                assert_eq!(
                    wide.0[i].to_bits(),
                    scalar.to_bits(),
                    "a={a}, x={}: wide={}, scalar={scalar}",
                    xs[i],
                    wide.0[i]
                );
                // Classify which branch the guard chose: the kept
                // recurrence never drops more than ln 2 below the base.
                if scalar.is_finite() && scalar >= lps[i] - std::f64::consts::LN_2 {
                    saw_recur = true;
                } else {
                    saw_guard = true;
                }
            }
        }
        assert!(
            saw_guard && saw_recur,
            "a={a}: sweep must straddle the guard boundary (guard={saw_guard}, recur={saw_recur})"
        );
    }
}
