//! Numerically stable log-space accumulation helpers.

/// Computes `ln Σᵢ exp(xᵢ)` with max-subtraction, avoiding overflow and
/// underflow. An empty slice yields `−∞` (the log of an empty sum).
///
/// `−∞` entries are treated as zero contributions; any `+∞` entry makes the
/// result `+∞`; any NaN propagates.
///
/// # Example
///
/// ```
/// // ln(e^{-1000} + e^{-1000}) = −1000 + ln 2, despite both terms underflowing.
/// let v = [-1000.0, -1000.0];
/// let expected = -1000.0 + 2.0f64.ln();
/// assert!((nhpp_special::log_sum_exp(&v) - expected).abs() < 1e-12);
/// ```
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if v.is_nan() {
            return f64::NAN;
        }
        if v > max {
            max = v;
        }
    }
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if max == f64::INFINITY {
        return f64::INFINITY;
    }
    let sum: f64 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// `ln(exp(a) + exp(b))` for two values, without building a slice.
pub fn log_sum_exp_pair(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if hi == f64::INFINITY {
        // `lo − hi` would be `∞ − ∞ = NaN` when both are `+∞`; the sum
        // is `+∞` either way, matching `log_sum_exp`.
        return f64::INFINITY;
    }
    hi + (lo - hi).exp().ln_1p()
}

/// Incremental `ln Σ exp(xᵢ)` over a stream of values, matching
/// [`log_sum_exp`] semantics without materialising the slice.
///
/// Maintains a running maximum and a Kahan-compensated sum of rescaled
/// exponentials, so pushing the values one at a time (the VB2 adaptive
/// sweep grows its component list round by round) loses no more accuracy
/// than the batch evaluation. `−∞` entries contribute nothing, any `+∞`
/// makes the total `+∞`, and any NaN makes it NaN — exactly as the batch
/// function behaves.
///
/// # Example
///
/// ```
/// let mut acc = nhpp_special::StreamingLogSumExp::new();
/// for &v in &[-1000.0, -1000.0] {
///     acc.push(v);
/// }
/// let expected = -1000.0 + 2.0f64.ln();
/// assert!((acc.value() - expected).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingLogSumExp {
    max: f64,
    /// Σ exp(xᵢ − max) over finite entries, Kahan-compensated.
    sum: f64,
    comp: f64,
    saw_nan: bool,
    saw_pos_inf: bool,
}

impl StreamingLogSumExp {
    /// An empty accumulator; [`value`](Self::value) is `−∞`, the log of
    /// an empty sum.
    pub fn new() -> Self {
        StreamingLogSumExp {
            max: f64::NEG_INFINITY,
            sum: 0.0,
            comp: 0.0,
            saw_nan: false,
            saw_pos_inf: false,
        }
    }

    /// Adds `exp(v)` to the accumulated sum.
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            self.saw_nan = true;
            return;
        }
        if v == f64::INFINITY {
            self.saw_pos_inf = true;
            return;
        }
        if v == f64::NEG_INFINITY {
            return;
        }
        if v > self.max {
            // Rescale the accumulated sum (and its compensation) to the
            // new maximum before adding the unit term.
            let scale = (self.max - v).exp();
            self.sum *= scale;
            self.comp *= scale;
            self.max = v;
            self.add(1.0);
        } else {
            self.add((v - self.max).exp());
        }
    }

    /// Kahan-compensated `sum += term`.
    fn add(&mut self, term: f64) {
        let y = term - self.comp;
        let t = self.sum + y;
        self.comp = (t - self.sum) - y;
        self.sum = t;
    }

    /// The current `ln Σ exp(xᵢ)`.
    pub fn value(&self) -> f64 {
        if self.saw_nan {
            return f64::NAN;
        }
        if self.saw_pos_inf {
            return f64::INFINITY;
        }
        if self.max == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        self.max + self.sum.ln()
    }
}

impl Default for StreamingLogSumExp {
    fn default() -> Self {
        Self::new()
    }
}

/// `ln(exp(a) − exp(b))` for `a >= b`, stable when the two are close.
///
/// Returns `−∞` when `a == b` and [`f64::NAN`] when `a < b` (the
/// difference would be negative and has no real logarithm).
pub fn log_diff_exp(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() || a < b {
        return f64::NAN;
    }
    if a == b {
        return f64::NEG_INFINITY;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    // ln(e^a − e^b) = a + ln(1 − e^{b−a}) = a + ln(−expm1(b−a))
    a + (-((b - a).exp_m1())).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sums() {
        let v = [0.0f64, 0.0];
        assert!((log_sum_exp(&v) - 2.0f64.ln()).abs() < 1e-14);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::INFINITY, 0.0]), f64::INFINITY);
        assert!(log_sum_exp(&[f64::NAN, 0.0]).is_nan());
    }

    #[test]
    fn extreme_magnitudes() {
        let v = [-1e6, -1e6 + 1.0];
        let expected = -1e6 + 1.0 + (1.0 + (-1.0f64).exp()).ln();
        assert!((log_sum_exp(&v) - expected).abs() < 1e-9);
        // A dominant term swamps the rest.
        let v = [700.0, -700.0];
        assert!((log_sum_exp(&v) - 700.0).abs() < 1e-12);
    }

    #[test]
    fn pair_matches_slice() {
        for &(a, b) in &[
            (0.0, 0.0),
            (-3.0, 5.0),
            (-1e5, -1e5 + 2.0),
            (f64::NEG_INFINITY, -4.0),
            (f64::NEG_INFINITY, f64::NEG_INFINITY),
            (f64::INFINITY, 0.0),
            (f64::INFINITY, f64::NEG_INFINITY),
            (f64::INFINITY, f64::INFINITY),
            (f64::NAN, 0.0),
            (0.0, f64::NAN),
            (f64::NAN, f64::INFINITY),
        ] {
            let s = log_sum_exp(&[a, b]);
            let p = log_sum_exp_pair(a, b);
            if s.is_finite() {
                assert!((s - p).abs() < 1e-12, "a={a}, b={b}");
            } else if s.is_nan() {
                assert!(p.is_nan(), "a={a}, b={b}: slice gave NaN, pair gave {p}");
            } else {
                assert_eq!(s, p, "a={a}, b={b}");
            }
        }
    }

    #[test]
    fn pair_of_infinities_is_infinite() {
        // Regression: `hi + (lo − hi).exp().ln_1p()` used to evaluate
        // `∞ − ∞` and return NaN for two `+∞` arguments.
        assert_eq!(
            log_sum_exp_pair(f64::INFINITY, f64::INFINITY),
            f64::INFINITY
        );
    }

    #[test]
    fn streaming_matches_batch() {
        let cases: &[&[f64]] = &[
            &[],
            &[0.0, 0.0],
            &[-1000.0, -1000.0],
            &[-1e6, -1e6 + 1.0],
            &[700.0, -700.0, 3.0],
            &[f64::NEG_INFINITY],
            &[f64::NEG_INFINITY, -4.0],
            &[f64::INFINITY, 0.0],
            &[f64::NAN, 0.0],
            &[f64::NAN, f64::INFINITY],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        ];
        for &case in cases {
            let batch = log_sum_exp(case);
            let mut acc = StreamingLogSumExp::new();
            for &v in case {
                acc.push(v);
            }
            let streamed = acc.value();
            if batch.is_nan() {
                assert!(streamed.is_nan(), "{case:?}");
            } else if batch.is_finite() {
                assert!((batch - streamed).abs() < 1e-12, "{case:?}");
            } else {
                assert_eq!(batch, streamed, "{case:?}");
            }
        }
    }

    #[test]
    fn streaming_order_independent_to_high_accuracy() {
        let forward: Vec<f64> = (0..200).map(|k| -(k as f64) * 3.7).collect();
        let mut rev = forward.clone();
        rev.reverse();
        let mut a = StreamingLogSumExp::new();
        let mut b = StreamingLogSumExp::new();
        forward.iter().for_each(|&v| a.push(v));
        rev.iter().for_each(|&v| b.push(v));
        assert!((a.value() - b.value()).abs() < 1e-13);
    }

    #[test]
    fn diff_exp() {
        // ln(e^1 − e^0) = ln(e − 1)
        let expected = (std::f64::consts::E - 1.0).ln();
        assert!((log_diff_exp(1.0, 0.0) - expected).abs() < 1e-14);
        assert_eq!(log_diff_exp(2.0, 2.0), f64::NEG_INFINITY);
        assert!(log_diff_exp(0.0, 1.0).is_nan());
        assert_eq!(log_diff_exp(3.0, f64::NEG_INFINITY), 3.0);
        // Near-equal arguments stay accurate: ln(e^x(1 − e^{−h})) ≈ x + ln h.
        let x = 10.0;
        let h = 1e-9;
        let got = log_diff_exp(x + h, x);
        assert!((got - (x + h.ln_1p().ln())).abs() < 1e-5 || (got - (x + h.ln())).abs() < 1e-5);
    }
}
