//! Numerically stable log-space accumulation helpers.

/// Computes `ln Σᵢ exp(xᵢ)` with max-subtraction, avoiding overflow and
/// underflow. An empty slice yields `−∞` (the log of an empty sum).
///
/// `−∞` entries are treated as zero contributions; any `+∞` entry makes the
/// result `+∞`; any NaN propagates.
///
/// # Example
///
/// ```
/// // ln(e^{-1000} + e^{-1000}) = −1000 + ln 2, despite both terms underflowing.
/// let v = [-1000.0, -1000.0];
/// let expected = -1000.0 + 2.0f64.ln();
/// assert!((nhpp_special::log_sum_exp(&v) - expected).abs() < 1e-12);
/// ```
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if v.is_nan() {
            return f64::NAN;
        }
        if v > max {
            max = v;
        }
    }
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if max == f64::INFINITY {
        return f64::INFINITY;
    }
    let sum: f64 = values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// `ln(exp(a) + exp(b))` for two values, without building a slice.
pub fn log_sum_exp_pair(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    if hi == f64::INFINITY {
        // `lo − hi` would be `∞ − ∞ = NaN` when both are `+∞`; the sum
        // is `+∞` either way, matching `log_sum_exp`.
        return f64::INFINITY;
    }
    hi + (lo - hi).exp().ln_1p()
}

/// `ln(exp(a) − exp(b))` for `a >= b`, stable when the two are close.
///
/// Returns `−∞` when `a == b` and [`f64::NAN`] when `a < b` (the
/// difference would be negative and has no real logarithm).
pub fn log_diff_exp(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() || a < b {
        return f64::NAN;
    }
    if a == b {
        return f64::NEG_INFINITY;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    // ln(e^a − e^b) = a + ln(1 − e^{b−a}) = a + ln(−expm1(b−a))
    a + (-((b - a).exp_m1())).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sums() {
        let v = [0.0f64, 0.0];
        assert!((log_sum_exp(&v) - 2.0f64.ln()).abs() < 1e-14);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::INFINITY, 0.0]), f64::INFINITY);
        assert!(log_sum_exp(&[f64::NAN, 0.0]).is_nan());
    }

    #[test]
    fn extreme_magnitudes() {
        let v = [-1e6, -1e6 + 1.0];
        let expected = -1e6 + 1.0 + (1.0 + (-1.0f64).exp()).ln();
        assert!((log_sum_exp(&v) - expected).abs() < 1e-9);
        // A dominant term swamps the rest.
        let v = [700.0, -700.0];
        assert!((log_sum_exp(&v) - 700.0).abs() < 1e-12);
    }

    #[test]
    fn pair_matches_slice() {
        for &(a, b) in &[
            (0.0, 0.0),
            (-3.0, 5.0),
            (-1e5, -1e5 + 2.0),
            (f64::NEG_INFINITY, -4.0),
            (f64::NEG_INFINITY, f64::NEG_INFINITY),
            (f64::INFINITY, 0.0),
            (f64::INFINITY, f64::NEG_INFINITY),
            (f64::INFINITY, f64::INFINITY),
            (f64::NAN, 0.0),
            (0.0, f64::NAN),
            (f64::NAN, f64::INFINITY),
        ] {
            let s = log_sum_exp(&[a, b]);
            let p = log_sum_exp_pair(a, b);
            if s.is_finite() {
                assert!((s - p).abs() < 1e-12, "a={a}, b={b}");
            } else if s.is_nan() {
                assert!(p.is_nan(), "a={a}, b={b}: slice gave NaN, pair gave {p}");
            } else {
                assert_eq!(s, p, "a={a}, b={b}");
            }
        }
    }

    #[test]
    fn pair_of_infinities_is_infinite() {
        // Regression: `hi + (lo − hi).exp().ln_1p()` used to evaluate
        // `∞ − ∞` and return NaN for two `+∞` arguments.
        assert_eq!(
            log_sum_exp_pair(f64::INFINITY, f64::INFINITY),
            f64::INFINITY
        );
    }

    #[test]
    fn diff_exp() {
        // ln(e^1 − e^0) = ln(e − 1)
        let expected = (std::f64::consts::E - 1.0).ln();
        assert!((log_diff_exp(1.0, 0.0) - expected).abs() < 1e-14);
        assert_eq!(log_diff_exp(2.0, 2.0), f64::NEG_INFINITY);
        assert!(log_diff_exp(0.0, 1.0).is_nan());
        assert_eq!(log_diff_exp(3.0, f64::NEG_INFINITY), 3.0);
        // Near-equal arguments stay accurate: ln(e^x(1 − e^{−h})) ≈ x + ln h.
        let x = 10.0;
        let h = 1e-9;
        let got = log_diff_exp(x + h, x);
        assert!((got - (x + h.ln_1p().ln())).abs() < 1e-5 || (got - (x + h.ln())).abs() < 1e-5);
    }
}
