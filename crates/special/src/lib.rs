//! Special functions underpinning the `nhpp-vb` workspace.
//!
//! This crate provides the handful of classical special functions that every
//! other crate in the workspace builds on: the log-gamma function and its
//! derivatives, the regularised incomplete gamma functions and their
//! inverse, the error function family, and the standard normal CDF and
//! quantile. All routines are pure `f64` implementations with no external
//! dependencies, accurate to close to machine precision over the parameter
//! ranges exercised by NHPP-based software reliability models (shapes up to
//! roughly `1e6`).
//!
//! # Conventions
//!
//! * Functions return [`f64::NAN`] when called outside their mathematical
//!   domain (mirroring `f64::ln` and friends) instead of panicking, so they
//!   can be used safely inside optimisation loops that probe boundaries.
//! * "Lower" incomplete gamma means `P(a, x) = γ(a, x) / Γ(a)` and "upper"
//!   means `Q(a, x) = Γ(a, x) / Γ(a)`, both *regularised*.
//!
//! # Example
//!
//! ```
//! use nhpp_special::{ln_gamma, gamma_p, gamma_q};
//!
//! // Γ(5) = 24
//! assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
//! // P + Q = 1
//! let (a, x) = (3.5, 2.0);
//! assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12);
//! ```

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they also reject NaN, which is exactly the validation the
// numerical code needs.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
mod erf;
mod gamma;
mod incgamma;
mod logsumexp;
mod normal;
mod recurrence;
mod wide;

pub use erf::{erf, erf_inv, erfc, erfc_inv};
pub use gamma::{digamma, ln_beta, ln_binomial, ln_factorial, ln_gamma, trigamma};
pub use incgamma::{
    gamma_p, gamma_p_inv, gamma_q, gamma_q_inv, ln_gamma_p, ln_gamma_p_given, ln_gamma_pq_given,
    ln_gamma_q, ln_gamma_q_given, EULER_GAMMA,
};
pub use logsumexp::{log_diff_exp, log_sum_exp, log_sum_exp_pair, StreamingLogSumExp};
pub use recurrence::{
    ln_gamma_p_step, ln_gamma_q_step, LnGammaLadder, REANCHOR_PERIOD,
};
pub use normal::{norm_cdf, norm_ln_pdf, norm_pdf, norm_ppf, norm_sf};
pub use wide::{
    active_simd, exp_lane, exp_shift_inplace_wide, exp_shift_inplace_x4, exp_shift_inplace_x8,
    ln_gamma_ladder_x4, ln_gamma_p_step_x4, ln_gamma_q_step_lane, ln_gamma_q_step_x4,
    log_sum_exp_wide, log_sum_exp_x4, log_sum_exp_x8, F64x4, F64x8, SimdDispatch, SimdPolicy,
    StreamingLogSumExpX4, WIDE8_LANES, WIDE_LANES,
};
