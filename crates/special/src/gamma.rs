//! Log-gamma, digamma, trigamma and related combinatorial helpers.

use std::f64::consts::PI;

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's values).
#[allow(clippy::excessive_precision)] // published coefficient values kept verbatim
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_59,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with `g = 7`, accurate to roughly
/// `1e-14` relative error across the positive real axis; values below
/// `0.5` are handled through the reflection formula.
///
/// Returns [`f64::NAN`] for `x <= 0` or non-finite input (the reflection
/// branch is only used internally for arguments in `(0, 0.5)`).
///
/// # Example
///
/// ```
/// // ln Γ(0.5) = ln √π
/// let expected = std::f64::consts::PI.sqrt().ln();
/// assert!((nhpp_special::ln_gamma(0.5) - expected).abs() < 1e-14);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if !x.is_finite() {
        return if x == f64::INFINITY {
            f64::INFINITY
        } else {
            f64::NAN
        };
    }
    if x <= 0.0 {
        return f64::NAN;
    }
    if x < 0.5 {
        // Reflection: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x).
        return (PI / (PI * x).sin()).ln() - ln_gamma_lanczos(1.0 - x);
    }
    ln_gamma_lanczos(x)
}

/// Lanczos core, valid for `x >= 0.5`.
fn ln_gamma_lanczos(x: f64) -> f64 {
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Small arguments are shifted upwards with the recurrence
/// `ψ(x) = ψ(x + 1) − 1/x` until the asymptotic expansion applies.
///
/// Returns [`f64::NAN`] for `x <= 0`.
///
/// # Example
///
/// ```
/// // ψ(1) = −γ (Euler–Mascheroni constant)
/// assert!((nhpp_special::digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-13);
/// ```
pub fn digamma(x: f64) -> f64 {
    if !(x > 0.0) {
        return f64::NAN;
    }
    let mut x = x;
    let mut result = 0.0;
    // Shift to the asymptotic region.
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion in 1/x².
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
    result
}

/// Trigamma function `ψ'(x)` for `x > 0`.
///
/// Returns [`f64::NAN`] for `x <= 0`.
///
/// # Example
///
/// ```
/// // ψ'(1) = π²/6
/// let expected = std::f64::consts::PI.powi(2) / 6.0;
/// assert!((nhpp_special::trigamma(1.0) - expected).abs() < 1e-12);
/// ```
pub fn trigamma(x: f64) -> f64 {
    if !(x > 0.0) {
        return f64::NAN;
    }
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result
        + inv
            * (1.0
                + inv
                    * (0.5
                        + inv
                            * (1.0 / 6.0
                                - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0)))))
}

/// Size of the cached `ln n!` table; covers `n ≤ 1024`, the latent fault
/// counts the VB2 sweep and Poisson pmf paths actually visit, without
/// recomputation.
const LN_FACT_CACHE: usize = 1025;

/// `ln n!`, exact for `n ≤ 1024` via a lazily built table and via
/// [`ln_gamma`] above that.
///
/// # Example
///
/// ```
/// assert_eq!(nhpp_special::ln_factorial(0), 0.0);
/// assert!((nhpp_special::ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = Vec::with_capacity(LN_FACT_CACHE);
        // Kahan-compensated running sum: the table now spans 1024
        // cumulative terms, so naive accumulation would drift a few
        // hundred ulps by the top of the table.
        let (mut acc, mut comp) = (0.0f64, 0.0f64);
        t.push(0.0);
        for k in 1..LN_FACT_CACHE as u64 {
            let y = (k as f64).ln() - comp;
            let s = acc + y;
            comp = (s - acc) - y;
            acc = s;
            t.push(acc);
        }
        t
    });
    match table.get(n as usize) {
        Some(&v) => v,
        None => ln_gamma(n as f64 + 1.0),
    }
}

/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a + b)` for `a, b > 0`.
///
/// Returns [`f64::NAN`] if either argument is non-positive.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// `ln C(n, k)`, the log binomial coefficient.
///
/// Returns `-inf` for `k > n` (the coefficient is zero).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol * expected.abs().max(1.0),
            "actual={actual}, expected={expected}"
        );
    }

    #[test]
    fn ln_gamma_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-14);
        assert_close(ln_gamma(2.0), 0.0, 1e-14);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-14);
        assert_close(ln_gamma(0.5), PI.sqrt().ln(), 1e-14);
        assert_close(ln_gamma(11.0), 3_628_800.0f64.ln(), 1e-14);
    }

    #[test]
    fn ln_gamma_recurrence_small_and_large() {
        for &x in &[0.1, 0.3, 0.7, 1.5, 3.2, 10.0, 123.4, 1e4, 1e6] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert_close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // ln Γ(0.25) = 1.2880225246980774
        assert_close(ln_gamma(0.25), 1.288_022_524_698_077_4, 1e-13);
        // ln Γ(0.1) = 2.252712651734206
        assert_close(ln_gamma(0.1), 2.252_712_651_734_206, 1e-13);
    }

    #[test]
    fn ln_gamma_domain() {
        assert!(ln_gamma(0.0).is_nan());
        assert!(ln_gamma(-1.5).is_nan());
        assert!(ln_gamma(f64::NAN).is_nan());
        assert_eq!(ln_gamma(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn digamma_known_values() {
        let euler = 0.577_215_664_901_532_9;
        assert_close(digamma(1.0), -euler, 1e-13);
        // ψ(0.5) = −γ − 2 ln 2
        assert_close(digamma(0.5), -euler - 2.0 * 2.0f64.ln(), 1e-13);
        // ψ(2) = 1 − γ
        assert_close(digamma(2.0), 1.0 - euler, 1e-13);
    }

    #[test]
    fn digamma_recurrence() {
        for &x in &[0.05, 0.5, 1.0, 2.5, 9.9, 50.0, 1e5] {
            assert_close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-12);
        }
    }

    #[test]
    fn digamma_matches_ln_gamma_derivative() {
        // Central finite difference of ln Γ matches ψ.
        for &x in &[0.8, 2.0, 7.3, 40.0] {
            let h = 1e-6 * x;
            let fd = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert_close(digamma(x), fd, 1e-7);
        }
    }

    #[test]
    fn trigamma_known_values() {
        assert_close(trigamma(1.0), PI * PI / 6.0, 1e-12);
        assert_close(trigamma(0.5), PI * PI / 2.0, 1e-12);
    }

    #[test]
    fn trigamma_recurrence() {
        for &x in &[0.2, 1.0, 4.5, 30.0] {
            assert_close(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-11);
        }
    }

    #[test]
    fn factorial_and_binomial() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert_close(ln_factorial(10), 3_628_800.0f64.ln(), 1e-13);
        assert_close(ln_factorial(300), ln_gamma(301.0), 1e-13);
        // Top of the extended table and first fallback value.
        assert_close(ln_factorial(1024), ln_gamma(1025.0), 1e-13);
        assert_close(ln_factorial(1025), ln_gamma(1026.0), 1e-13);
        assert_close(ln_binomial(10, 3), 120.0f64.ln(), 1e-13);
        assert_eq!(ln_binomial(3, 10), f64::NEG_INFINITY);
    }

    #[test]
    fn beta_symmetry() {
        assert_close(ln_beta(2.5, 3.5), ln_beta(3.5, 2.5), 1e-14);
        // B(1, b) = 1/b
        assert_close(ln_beta(1.0, 7.0), -(7.0f64.ln()), 1e-13);
    }
}
