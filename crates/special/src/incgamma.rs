//! Regularised incomplete gamma functions `P(a, x)`, `Q(a, x)`, their
//! logarithms and their inverse.
//!
//! These are the workhorse functions of the whole workspace: the gamma CDF
//! `G_Gam(t; α, β) = P(α, βt)` drives every NHPP likelihood, the VB2 weight
//! computation needs `ln Q` deep in the tail, and posterior quantiles need
//! the inverse.

use crate::gamma::ln_gamma;
use crate::normal::norm_ppf;

/// The Euler–Mascheroni constant `γ`.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

const MAX_ITER: usize = 20_000;
const EPS: f64 = 1e-15;
/// Smallest representable scale used by the modified Lentz algorithm.
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// `ln` of the power-series representation of `P(a, x)`, accurate for
/// `x < a + 1`. Returns `ln P(a, x)`. `gln` is the caller's `ln Γ(a)`,
/// threaded so hot loops with a fixed shape pay for it once.
fn ln_gamma_p_series(a: f64, x: f64, gln: f64) -> f64 {
    // P(a, x) = e^{-x} x^a / Γ(a) · Σ_{n≥0} x^n Γ(a) / Γ(a + 1 + n)
    let mut ap = a;
    let mut del = 1.0 / a;
    let mut sum = del;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    -x + a * x.ln() - gln + sum.ln()
}

/// `ln` of the continued-fraction representation of `Q(a, x)`, accurate for
/// `x >= a + 1`. Returns `ln Q(a, x)`. Uses the modified Lentz algorithm;
/// `gln` is the caller's `ln Γ(a)`.
fn ln_gamma_q_cf(a: f64, x: f64, gln: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() <= EPS {
            break;
        }
    }
    -x + a * x.ln() - gln + h.ln()
}

/// Regularised lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// `P(a, x)` is the CDF of a `Gamma(a, 1)` random variable evaluated at
/// `x`; requires `a > 0` and `x >= 0` (returns [`f64::NAN`] otherwise).
///
/// # Example
///
/// ```
/// // P(1, x) = 1 − e^{−x}
/// let x = 0.7;
/// assert!((nhpp_special::gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-14);
/// ```
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if !(a > 0.0) || !(x >= 0.0) {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == f64::INFINITY {
        return 1.0;
    }
    if x < a + 1.0 {
        ln_gamma_p_series(a, x, ln_gamma(a)).exp()
    } else {
        -(ln_gamma_q_cf(a, x, ln_gamma(a)).exp_m1())
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// `Q(a, x)` is the survival function of a `Gamma(a, 1)` random variable;
/// requires `a > 0` and `x >= 0` (returns [`f64::NAN`] otherwise).
///
/// # Example
///
/// ```
/// // Q(n, x) = e^{−x} Σ_{k<n} x^k/k!  for integer n; here n = 3, x = 2.5.
/// let expected = (-2.5f64).exp() * (1.0 + 2.5 + 2.5f64.powi(2) / 2.0);
/// assert!((nhpp_special::gamma_q(3.0, 2.5) - expected).abs() < 1e-14);
/// ```
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if !(a > 0.0) || !(x >= 0.0) {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x == f64::INFINITY {
        return 0.0;
    }
    if x < a + 1.0 {
        -(ln_gamma_p_series(a, x, ln_gamma(a)).exp_m1())
    } else {
        ln_gamma_q_cf(a, x, ln_gamma(a)).exp()
    }
}

/// `ln P(a, x)`, accurate even when `P` underflows (deep lower tail).
///
/// Requires `a > 0`, `x >= 0`; `ln P(a, 0) = −∞`.
pub fn ln_gamma_p(a: f64, x: f64) -> f64 {
    if !(a > 0.0) || !(x >= 0.0) {
        return f64::NAN;
    }
    ln_gamma_p_given(a, x, ln_gamma(a))
}

/// [`ln_gamma_p`] with `ln Γ(a)` supplied by the caller — identical
/// value, but lets a hot loop with a fixed shape (e.g. the VB2 weight
/// sweep, where `a = α₀` for every component) hoist the `ln Γ`
/// evaluation out of the loop.
pub fn ln_gamma_p_given(a: f64, x: f64, ln_gamma_a: f64) -> f64 {
    if !(a > 0.0) || !(x >= 0.0) {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x == f64::INFINITY {
        return 0.0;
    }
    if x < a + 1.0 {
        ln_gamma_p_series(a, x, ln_gamma_a)
    } else {
        let q = ln_gamma_q_cf(a, x, ln_gamma_a).exp();
        (-q).ln_1p()
    }
}

/// `ln Q(a, x)`, accurate even when `Q` underflows (deep upper tail).
///
/// This is the quantity the VB2 weight recursion needs: `r · ln S(t_e)`
/// stays finite for hundreds of residual faults even when `S(t_e)` itself
/// would underflow to zero. Requires `a > 0`, `x >= 0`; `ln Q(a, 0) = 0`.
pub fn ln_gamma_q(a: f64, x: f64) -> f64 {
    if !(a > 0.0) || !(x >= 0.0) {
        return f64::NAN;
    }
    ln_gamma_q_given(a, x, ln_gamma(a))
}

/// [`ln_gamma_q`] with `ln Γ(a)` supplied by the caller (see
/// [`ln_gamma_p_given`]).
pub fn ln_gamma_q_given(a: f64, x: f64, ln_gamma_a: f64) -> f64 {
    if !(a > 0.0) || !(x >= 0.0) {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == f64::INFINITY {
        return f64::NEG_INFINITY;
    }
    if x < a + 1.0 {
        let p = ln_gamma_p_series(a, x, ln_gamma_a).exp();
        (-p).ln_1p()
    } else {
        ln_gamma_q_cf(a, x, ln_gamma_a)
    }
}

/// Both `ln P(a, x)` and `ln Q(a, x)` from a single series/continued-
/// fraction pass, with `ln Γ(a)` supplied by the caller.
///
/// Each element is bitwise identical to what [`ln_gamma_p_given`] and
/// [`ln_gamma_q_given`] return for the same arguments — the pair variant
/// exists so hot loops that need both tails (e.g. the grouped-data
/// interval-mass evaluation in the VB2 sweep) pay for one evaluation of
/// the underlying series or continued fraction instead of two.
pub fn ln_gamma_pq_given(a: f64, x: f64, ln_gamma_a: f64) -> (f64, f64) {
    if !(a > 0.0) || !(x >= 0.0) {
        return (f64::NAN, f64::NAN);
    }
    if x == 0.0 {
        return (f64::NEG_INFINITY, 0.0);
    }
    if x == f64::INFINITY {
        return (0.0, f64::NEG_INFINITY);
    }
    if x < a + 1.0 {
        let ln_p = ln_gamma_p_series(a, x, ln_gamma_a);
        let p = ln_p.exp();
        (ln_p, (-p).ln_1p())
    } else {
        let ln_q = ln_gamma_q_cf(a, x, ln_gamma_a);
        let q = ln_q.exp();
        ((-q).ln_1p(), ln_q)
    }
}

/// Inverse of [`gamma_p`] in its second argument: returns `x` such that
/// `P(a, x) = p`.
///
/// Requires `a > 0` and `p ∈ [0, 1]`; returns `0` for `p = 0`,
/// [`f64::INFINITY`] for `p = 1` and [`f64::NAN`] outside the domain.
/// Uses a Wilson–Hilferty starting guess refined by safeguarded
/// Halley/Newton iteration; accurate to a few ulps of `x`.
///
/// # Example
///
/// ```
/// let a = 4.2;
/// let x = nhpp_special::gamma_p_inv(a, 0.37);
/// assert!((nhpp_special::gamma_p(a, x) - 0.37).abs() < 1e-12);
/// ```
pub fn gamma_p_inv(a: f64, p: f64) -> f64 {
    if !(a > 0.0) || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Starting guess.
    let mut x = if a > 1.0 {
        // Wilson–Hilferty.
        let z = norm_ppf(p);
        let u = 1.0 - 1.0 / (9.0 * a) + z * (1.0 / (9.0 * a)).sqrt();
        let guess = a * u * u * u;
        if guess > 0.0 {
            guess
        } else {
            // Far lower tail: invert the leading series term P ≈ x^a/Γ(a+1).
            ((p.ln() + ln_gamma(a + 1.0)) / a).exp()
        }
    } else {
        // NR 6.2.1-style small-shape guess.
        let t = 1.0 - a * (0.253 + a * 0.12);
        if p < t {
            (p / t).powf(1.0 / a)
        } else {
            1.0 - ((1.0 - (p - t) / (1.0 - t)).ln())
        }
    };

    // Bracket maintained for safeguarding.
    let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
    let gln = ln_gamma(a);
    for _ in 0..100 {
        if x <= 0.0 {
            x = 0.5
                * (lo
                    + if hi.is_finite() {
                        hi
                    } else {
                        lo.max(1.0) * 2.0
                    });
        }
        let err = gamma_p(a, x) - p;
        if err > 0.0 {
            hi = hi.min(x);
        } else {
            lo = lo.max(x);
        }
        // pdf of Gamma(a, 1) at x, in log space to avoid under/overflow.
        let ln_pdf = (a - 1.0) * x.ln() - x - gln;
        let t = ln_pdf.exp();
        let step = if t > 0.0 {
            let u = err / t;
            // Halley correction.
            u / (1.0 - 0.5 * (u * ((a - 1.0) / x - 1.0)).clamp(-1.0, 1.0))
        } else {
            0.0
        };
        let mut x_new = x - step;
        if !(x_new > lo && x_new < hi) || step == 0.0 {
            // Newton left the bracket (or pdf underflowed): bisect.
            x_new = if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                x * 2.0
            };
        }
        if (x_new - x).abs() <= 1e-14 * x.abs().max(1e-300) {
            return x_new;
        }
        x = x_new;
    }
    x
}

/// Inverse of [`gamma_q`]: returns `x` such that `Q(a, x) = q`.
///
/// Requires `a > 0`, `q ∈ [0, 1]`; see [`gamma_p_inv`] for accuracy notes.
pub fn gamma_q_inv(a: f64, q: f64) -> f64 {
    if !(a > 0.0) || !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    gamma_p_inv(a, 1.0 - q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol * expected.abs().max(1.0),
            "actual={actual}, expected={expected}"
        );
    }

    #[test]
    fn given_variants_are_bitwise_identical_to_plain() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 123.4] {
            let gln = ln_gamma(a);
            for &x in &[0.0, 1e-6, 0.5, a, a + 1.0, 3.0 * a, 800.0, f64::INFINITY] {
                assert_eq!(
                    ln_gamma_p(a, x).to_bits(),
                    ln_gamma_p_given(a, x, gln).to_bits(),
                    "a={a}, x={x}"
                );
                assert_eq!(
                    ln_gamma_q(a, x).to_bits(),
                    ln_gamma_q_given(a, x, gln).to_bits(),
                    "a={a}, x={x}"
                );
                let (ln_p, ln_q) = ln_gamma_pq_given(a, x, gln);
                assert_eq!(ln_p.to_bits(), ln_gamma_p(a, x).to_bits(), "a={a}, x={x}");
                assert_eq!(ln_q.to_bits(), ln_gamma_q(a, x).to_bits(), "a={a}, x={x}");
            }
        }
        assert!(ln_gamma_p_given(-1.0, 1.0, 0.0).is_nan());
        assert!(ln_gamma_q_given(1.0, -1.0, 0.0).is_nan());
        let (ln_p, ln_q) = ln_gamma_pq_given(0.0, 1.0, 0.0);
        assert!(ln_p.is_nan() && ln_q.is_nan());
    }

    #[test]
    fn p_of_shape_one_is_exponential_cdf() {
        for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 40.0] {
            assert_close(gamma_p(1.0, x), -(-x).exp_m1(), 1e-14);
        }
    }

    #[test]
    fn q_integer_shape_matches_poisson_tail() {
        // Q(n, x) = e^{-x} Σ_{k<n} x^k / k!
        let poisson_tail = |n: u32, x: f64| {
            let mut term = 1.0;
            let mut sum = 1.0;
            for k in 1..n {
                term *= x / k as f64;
                sum += term;
            }
            (-x).exp() * sum
        };
        for &(n, x) in &[(1u32, 0.3), (3, 2.5), (5, 1.0), (10, 20.0), (4, 4.0)] {
            assert_close(gamma_q(n as f64, x), poisson_tail(n, x), 1e-13);
        }
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.7, 10.0, 123.0, 5000.0] {
            for &frac in &[0.1, 0.5, 1.0, 1.5, 3.0] {
                let x = a * frac;
                assert_close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-13);
            }
        }
    }

    #[test]
    fn ln_versions_consistent_with_linear() {
        for &(a, x) in &[(2.0, 1.0), (5.5, 8.0), (0.7, 0.2), (300.0, 280.0)] {
            assert_close(ln_gamma_p(a, x), gamma_p(a, x).ln(), 1e-11);
            assert_close(ln_gamma_q(a, x), gamma_q(a, x).ln(), 1e-11);
        }
    }

    #[test]
    fn ln_q_deep_tail_finite() {
        // Q(1, 800) = e^{-800}: underflows linearly, fine in logs.
        assert_close(ln_gamma_q(1.0, 800.0), -800.0, 1e-12);
        // ln P deep lower tail: P(10, 1e-3) ≈ (1e-3)^10 / 10!.
        let expected = 10.0 * (1e-3f64).ln() - ln_gamma(11.0);
        assert_close(ln_gamma_p(10.0, 1e-3), expected, 1e-3);
    }

    #[test]
    fn edge_values() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        assert_eq!(gamma_p(2.0, f64::INFINITY), 1.0);
        assert!(gamma_p(-1.0, 2.0).is_nan());
        assert!(gamma_p(1.0, -2.0).is_nan());
    }

    #[test]
    fn inverse_round_trip() {
        for &a in &[0.2, 0.9, 1.0, 2.0, 17.3, 400.0, 2.5e4] {
            for &p in &[1e-10, 1e-4, 0.005, 0.025, 0.5, 0.975, 0.995, 1.0 - 1e-9] {
                let x = gamma_p_inv(a, p);
                assert!(x.is_finite() && x > 0.0, "a={a}, p={p}, x={x}");
                assert!(
                    (gamma_p(a, x) - p).abs() < 1e-10,
                    "a={a}, p={p}, x={x}, P={}",
                    gamma_p(a, x)
                );
            }
        }
    }

    #[test]
    fn inverse_edges() {
        assert_eq!(gamma_p_inv(3.0, 0.0), 0.0);
        assert_eq!(gamma_p_inv(3.0, 1.0), f64::INFINITY);
        assert!(gamma_p_inv(3.0, -0.1).is_nan());
        assert!(gamma_p_inv(3.0, 1.1).is_nan());
        // Median of Gamma(1,1) is ln 2.
        assert_close(gamma_p_inv(1.0, 0.5), 2.0f64.ln(), 1e-12);
    }

    #[test]
    fn q_inverse_matches_p_inverse() {
        let a = 6.0;
        let x = gamma_q_inv(a, 0.01);
        assert_close(gamma_q(a, x), 0.01, 1e-10);
    }

    #[test]
    fn monotone_in_x() {
        let a = 3.7;
        let mut prev = -1.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(a, x);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn large_shape_normal_approximation() {
        // For large a, P(a, a + z√a) ≈ Φ(z) to O(1/√a).
        let a = 1e6;
        let p = gamma_p(a, a);
        assert!((p - 0.5).abs() < 1e-3, "p={p}");
    }
}
