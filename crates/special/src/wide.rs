//! Portable lane-parallel (SIMD-style) kernels for the sweep hot loops.
//!
//! The VB2 component sweep and the NINT grid passes spend their time in
//! long runs of *independent* per-element evaluations: one fixed point
//! per candidate `N`, one log-posterior cell per quadrature node. These
//! kernels batch four such elements into a [`F64x4`] struct-of-arrays
//! register and evaluate them elementwise, which modern compilers lower
//! to vector instructions (and which pipelines well even without them —
//! four independent divisions or polynomial chains overlap in the
//! out-of-order core where one serial chain cannot).
//!
//! # Dispatch and determinism
//!
//! The lane width is a *software* choice, never a CPU-feature probe:
//! [`active_simd`] consults the `NHPP_SIMD` environment variable once
//! per process (`scalar` forces the plain kernels, `wide8` the 8-lane
//! tier) and otherwise picks the 4-lane path. Because no `cpuid`-style
//! detection is involved, a
//! recorded lane width plus the same inputs reproduces a run bitwise on
//! any machine. Callers pin the width they used into their results (see
//! `Vb2Posterior::lane_width` / `FitReport::lane_width` in `nhpp-vb`).
//!
//! Wide and scalar kernels may differ from each other by a few ulps
//! (the wide exponential is a polynomial kernel, not libm), but each is
//! individually deterministic: same inputs, same lane width, same bits,
//! independent of thread count.
//!
//! # The guard seam
//!
//! [`ln_gamma_p_step_x4`] deliberately delegates to the scalar
//! [`ln_gamma_p_step`] lane by lane: the P-recurrence's cancellation
//! guard makes a *decision* (re-anchor with a direct evaluation or
//! keep the recurrence), and scalar and lane paths must agree bitwise
//! on where that boundary sits — a lane that re-anchors one step later
//! than the scalar path would drift by the whole cancelled mass. The
//! property tests pin this agreement across the guard boundary.

use crate::recurrence::ln_gamma_p_step;
use std::ops::{Add, Div, Mul, Sub};
use std::sync::OnceLock;

/// Lane count of the 4-wide kernels.
pub const WIDE_LANES: usize = 4;

/// Lane count of the 8-wide kernels.
pub const WIDE8_LANES: usize = 8;

/// Which kernel family a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdDispatch {
    /// Plain one-element kernels (the pre-lane code paths, unchanged).
    Scalar,
    /// Four-lane struct-of-arrays kernels.
    Wide4,
    /// Eight-lane struct-of-arrays kernels: the same per-lane
    /// arithmetic as [`SimdDispatch::Wide4`], twice the block width —
    /// results differ from the 4-lane path only where a reduction's
    /// grouping depends on the lane count.
    Wide8,
}

impl SimdDispatch {
    /// The lane width this dispatch evaluates per step.
    pub fn lane_width(self) -> usize {
        match self {
            SimdDispatch::Scalar => 1,
            SimdDispatch::Wide4 => WIDE_LANES,
            SimdDispatch::Wide8 => WIDE8_LANES,
        }
    }
}

/// A caller-facing lane policy: follow the process-wide dispatch or
/// force one side (tests and reproduction runs pin the width this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdPolicy {
    /// Use [`active_simd`] (wide unless `NHPP_SIMD` forces otherwise).
    #[default]
    Auto,
    /// Force the scalar kernels.
    ForceScalar,
    /// Force the 4-lane kernels (where the caller supports them).
    ForceWide,
    /// Force the 8-lane kernels (where the caller supports them).
    ForceWide8,
}

impl SimdPolicy {
    /// Resolves the policy against the process-wide default.
    pub fn resolve(self) -> SimdDispatch {
        match self {
            SimdPolicy::Auto => active_simd(),
            SimdPolicy::ForceScalar => SimdDispatch::Scalar,
            SimdPolicy::ForceWide => SimdDispatch::Wide4,
            SimdPolicy::ForceWide8 => SimdDispatch::Wide8,
        }
    }
}

static ACTIVE: OnceLock<SimdDispatch> = OnceLock::new();

/// The process-wide kernel dispatch, decided once: `NHPP_SIMD=scalar`
/// (or `off`/`0`) forces the scalar kernels, `NHPP_SIMD=wide8` the
/// 8-lane kernels, and anything else — `wide4`, `wide`, or the
/// variable being unset — selects the 4-lane kernels. Purely a
/// software switch; no CPU feature detection is involved, so the choice
/// (and therefore every result) reproduces on any machine.
pub fn active_simd() -> SimdDispatch {
    *ACTIVE.get_or_init(|| match std::env::var("NHPP_SIMD").as_deref() {
        Ok("scalar") | Ok("off") | Ok("0") => SimdDispatch::Scalar,
        Ok("wide8") => SimdDispatch::Wide8,
        _ => SimdDispatch::Wide4,
    })
}

/// Four `f64` lanes evaluated elementwise — the struct-of-arrays unit
/// of every wide kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `v`.
    pub fn splat(v: f64) -> F64x4 {
        F64x4([v; 4])
    }

    /// Lanes loaded from the first four elements of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than four elements.
    pub fn from_slice(s: &[f64]) -> F64x4 {
        F64x4([s[0], s[1], s[2], s[3]])
    }

    /// The lanes as an array.
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }

    fn zip(self, rhs: F64x4, f: impl Fn(f64, f64) -> f64) -> F64x4 {
        let (a, b) = (self.0, rhs.0);
        F64x4([f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])])
    }

    fn map(self, f: impl Fn(f64) -> f64) -> F64x4 {
        let a = self.0;
        F64x4([f(a[0]), f(a[1]), f(a[2]), f(a[3])])
    }

    /// Lane-wise fused multiply-add `self * a + b`, bitwise the scalar
    /// [`f64::mul_add`] per lane.
    pub fn mul_add(self, a: F64x4, b: F64x4) -> F64x4 {
        let (x, y, z) = (self.0, a.0, b.0);
        F64x4([
            x[0].mul_add(y[0], z[0]),
            x[1].mul_add(y[1], z[1]),
            x[2].mul_add(y[2], z[2]),
            x[3].mul_add(y[3], z[3]),
        ])
    }

    /// Lane-wise natural log. Delegates to libm per lane: the callers
    /// that need `ln` (ladder steps, weight assembly) need its bitwise
    /// agreement with the scalar paths more than they need throughput.
    pub fn ln(self) -> F64x4 {
        self.map(f64::ln)
    }

    /// Lane-wise `ln(1 + x)`, libm per lane (see [`F64x4::ln`]).
    pub fn ln_1p(self) -> F64x4 {
        self.map(f64::ln_1p)
    }

    /// Lane-wise exponential via the polynomial kernel [`exp_lane`] —
    /// a branch-free range-reduced evaluation that the compiler can
    /// keep in vector registers, accurate to a couple of ulps.
    pub fn exp(self) -> F64x4 {
        let a = self.0;
        let core = [
            exp_core(a[0]),
            exp_core(a[1]),
            exp_core(a[2]),
            exp_core(a[3]),
        ];
        let mut out = [0.0; 4];
        for (o, (&x, &e)) in out.iter_mut().zip(a.iter().zip(core.iter())) {
            *o = exp_fixup(x, e);
        }
        F64x4(out)
    }
}

impl Add for F64x4 {
    type Output = F64x4;
    fn add(self, rhs: F64x4) -> F64x4 {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for F64x4 {
    type Output = F64x4;
    fn sub(self, rhs: F64x4) -> F64x4 {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for F64x4 {
    type Output = F64x4;
    fn mul(self, rhs: F64x4) -> F64x4 {
        self.zip(rhs, |a, b| a * b)
    }
}

impl Div for F64x4 {
    type Output = F64x4;
    fn div(self, rhs: F64x4) -> F64x4 {
        self.zip(rhs, |a, b| a / b)
    }
}

/// Eight `f64` lanes evaluated elementwise — the struct-of-arrays unit
/// of the [`SimdDispatch::Wide8`] tier. Every operation is the same
/// per-lane arithmetic as [`F64x4`] (scalar `mul_add`, libm `ln`, the
/// polynomial [`exp_lane`]), so a value computed in one lane of either
/// width is bitwise identical; only reductions whose grouping depends
/// on the lane count can differ between the tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64x8(pub [f64; 8]);

impl F64x8 {
    /// All eight lanes set to `v`.
    pub fn splat(v: f64) -> F64x8 {
        F64x8([v; 8])
    }

    /// Lanes loaded from the first eight elements of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` has fewer than eight elements.
    pub fn from_slice(s: &[f64]) -> F64x8 {
        let mut out = [0.0; 8];
        out.copy_from_slice(&s[..8]);
        F64x8(out)
    }

    /// The lanes as an array.
    pub fn to_array(self) -> [f64; 8] {
        self.0
    }

    fn zip(self, rhs: F64x8, f: impl Fn(f64, f64) -> f64) -> F64x8 {
        let mut out = [0.0; 8];
        for (o, (&a, &b)) in out.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *o = f(a, b);
        }
        F64x8(out)
    }

    fn map(self, f: impl Fn(f64) -> f64) -> F64x8 {
        let mut out = [0.0; 8];
        for (o, &a) in out.iter_mut().zip(self.0.iter()) {
            *o = f(a);
        }
        F64x8(out)
    }

    /// Lane-wise fused multiply-add `self * a + b`, bitwise the scalar
    /// [`f64::mul_add`] per lane.
    pub fn mul_add(self, a: F64x8, b: F64x8) -> F64x8 {
        let mut out = [0.0; 8];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].mul_add(a.0[i], b.0[i]);
        }
        F64x8(out)
    }

    /// Lane-wise natural log, libm per lane (see [`F64x4::ln`]).
    pub fn ln(self) -> F64x8 {
        self.map(f64::ln)
    }

    /// Lane-wise `ln(1 + x)`, libm per lane.
    pub fn ln_1p(self) -> F64x8 {
        self.map(f64::ln_1p)
    }

    /// Lane-wise exponential via the polynomial kernel [`exp_lane`],
    /// bitwise the 4-lane [`F64x4::exp`] per lane.
    pub fn exp(self) -> F64x8 {
        let a = self.0;
        let mut core = [0.0; 8];
        for (c, &x) in core.iter_mut().zip(a.iter()) {
            *c = exp_core(x);
        }
        let mut out = [0.0; 8];
        for (o, (&x, &e)) in out.iter_mut().zip(a.iter().zip(core.iter())) {
            *o = exp_fixup(x, e);
        }
        F64x8(out)
    }
}

impl Add for F64x8 {
    type Output = F64x8;
    fn add(self, rhs: F64x8) -> F64x8 {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for F64x8 {
    type Output = F64x8;
    fn sub(self, rhs: F64x8) -> F64x8 {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for F64x8 {
    type Output = F64x8;
    fn mul(self, rhs: F64x8) -> F64x8 {
        self.zip(rhs, |a, b| a * b)
    }
}

impl Div for F64x8 {
    type Output = F64x8;
    fn div(self, rhs: F64x8) -> F64x8 {
        self.zip(rhs, |a, b| a / b)
    }
}

/// `exp(x)` for one lane through the same polynomial kernel the wide
/// exponential uses, so ragged-tail elements match their in-lane
/// neighbours bitwise.
pub fn exp_lane(x: f64) -> f64 {
    exp_fixup(x, exp_core(x))
}

// Argument beyond which exp overflows f64.
const EXP_OVERFLOW: f64 = 709.782712893384;
// Argument below which exp underflows to zero (past the last subnormal).
const EXP_UNDERFLOW: f64 = -745.2;
// 1.5 · 2^52: adding and subtracting rounds to the nearest integer.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;
const LOG2_E: f64 = std::f64::consts::LOG2_E;
// ln 2 split hi/lo so `x − k·ln2` is exact in the leading term.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

/// Branch-free core of the polynomial exponential: clamp, reduce by
/// `k = round(x / ln 2)`, evaluate the degree-13 Taylor polynomial of
/// `exp(r)` on `|r| ≤ ln2/2` (truncation ≈ 4e−18 relative), scale by
/// `2^k` through two exponent-bit factors so subnormal results stay
/// exact. Specials are repaired afterwards by [`exp_fixup`].
#[inline(always)]
fn exp_core(x: f64) -> f64 {
    let xc = x.clamp(EXP_UNDERFLOW, EXP_OVERFLOW);
    let kf = (xc * LOG2_E + ROUND_MAGIC) - ROUND_MAGIC;
    let r = (xc - kf * LN2_HI) - kf * LN2_LO;
    // Horner over 1/k! for k = 13 down to 0, in plain mul/add on
    // purpose: `f64::mul_add` on a build without compiled-in FMA (the
    // baseline x86-64 target) lowers to a libm *call* per step, which
    // made this kernel slower than libm's own `exp`. The separate
    // roundings cost ≈1 extra ulp over |r| ≤ ln2/2 — inside this
    // kernel's couple-of-ulps contract — and `k·LN2_HI` stays exact
    // regardless (LN2_HI carries enough trailing zero bits).
    let mut p: f64 = 1.605_904_383_682_161_3e-10; // 1/13!
    p = p * r + 2.087_675_698_786_81e-9; // 1/12!
    p = p * r + 2.505_210_838_544_172e-8; // 1/11!
    p = p * r + 2.755_731_922_398_589e-7; // 1/10!
    p = p * r + 2.755_731_922_398_589_3e-6; // 1/9!
    p = p * r + 2.480_158_730_158_73e-5; // 1/8!
    p = p * r + 1.984_126_984_126_984e-4; // 1/7!
    p = p * r + 1.388_888_888_888_889e-3; // 1/6!
    p = p * r + 8.333_333_333_333_333e-3; // 1/5!
    p = p * r + 4.166_666_666_666_666_4e-2; // 1/4!
    p = p * r + 1.666_666_666_666_666_6e-1; // 1/3!
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2^k as two factors, each with an in-range exponent, so k down to
    // −1074 (subnormal results) and up to +1024 (overflow to ∞) work.
    let k = kf as i64;
    let k_hi = k / 2;
    let k_lo = k - k_hi;
    p * pow2(k_hi) * pow2(k_lo)
}

/// `2^k` by exponent-bit construction; `k` must lie in `[−1022, 1023]`.
#[inline(always)]
fn pow2(k: i64) -> f64 {
    f64::from_bits(((1023 + k) as u64) << 52)
}

/// Repairs the special cases the branch-free core clamped away.
#[inline(always)]
fn exp_fixup(x: f64, core: f64) -> f64 {
    if x.is_nan() {
        f64::NAN
    } else if x > EXP_OVERFLOW {
        f64::INFINITY
    } else if x < EXP_UNDERFLOW {
        0.0
    } else {
        core
    }
}

/// Four ln-gamma ladder steps at once: given `ln Γ(x)`, returns
/// `[ln Γ(x), ln Γ(x+1), ln Γ(x+2), ln Γ(x+3)]` and `ln Γ(x+4)` via
/// one wide `ln` over `x..x+3` plus prefix sums — the lane-batched form
/// of four `LnGammaLadder::advance` calls (without the re-anchor, which
/// remains the caller's periodic responsibility).
pub fn ln_gamma_ladder_x4(x: f64, ln_gamma_x: f64) -> (F64x4, f64) {
    let lns = F64x4([x, x + 1.0, x + 2.0, x + 3.0]).ln().0;
    let v0 = ln_gamma_x;
    let v1 = v0 + lns[0];
    let v2 = v1 + lns[1];
    let v3 = v2 + lns[2];
    (F64x4([v0, v1, v2, v3]), v3 + lns[3])
}

/// Four independent Q-recurrence steps: `ln Q(a+1, x)` from
/// `ln Q(a, x)` per lane (see the scalar [`ln_gamma_q_step`]). The sum
/// `Q + increment` never cancels, so the step is safe to evaluate in
/// wide arithmetic; the pairwise log-sum-exp runs on the polynomial
/// exponential, which costs a couple of ulps against the scalar step.
pub fn ln_gamma_q_step_x4(
    a: F64x4,
    x: F64x4,
    ln_x: F64x4,
    ln_q_a: F64x4,
    ln_gamma_a1: F64x4,
) -> F64x4 {
    let mut out = [0.0; 4];
    for (i, o) in out.iter_mut().enumerate() {
        *o = ln_gamma_q_step_lane(a.0[i], x.0[i], ln_x.0[i], ln_q_a.0[i], ln_gamma_a1.0[i]);
    }
    F64x4(out)
}

/// One Q-recurrence step on the lane kernels: exactly the arithmetic of
/// a single [`ln_gamma_q_step_x4`] lane (scalar `mul_add` increment,
/// [`exp_lane`]-based pairwise log-sum-exp), factored out so width-
/// generic sweeps can evaluate any block size and ragged tails with
/// bitwise-identical per-lane results.
pub fn ln_gamma_q_step_lane(a: f64, x: f64, ln_x: f64, ln_q_a: f64, ln_gamma_a1: f64) -> f64 {
    let inc = a.mul_add(ln_x, 0.0 - x) - ln_gamma_a1;
    if !(a > 0.0) || !(x >= 0.0) || ln_q_a.is_nan() {
        f64::NAN
    } else if x == 0.0 {
        0.0
    } else if x == f64::INFINITY {
        f64::NEG_INFINITY
    } else {
        log_sum_exp_pair_lane(ln_q_a, inc)
    }
}

/// `ln(exp(a) + exp(b))` on the lane kernels ([`exp_lane`] + `ln_1p`).
fn log_sum_exp_pair_lane(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    hi + exp_lane(lo - hi).ln_1p()
}

/// Four P-recurrence steps, delegated lane by lane to the scalar
/// [`ln_gamma_p_step`]: the cancellation guard's re-anchor decision
/// must agree *bitwise* between scalar and lane paths (see the module
/// docs), so the wide form is a layout change only, never a numeric
/// re-derivation.
pub fn ln_gamma_p_step_x4(
    a: F64x4,
    x: F64x4,
    ln_x: F64x4,
    ln_p_a: F64x4,
    ln_gamma_a1: F64x4,
) -> F64x4 {
    let mut out = [0.0; 4];
    for (i, o) in out.iter_mut().enumerate() {
        *o = ln_gamma_p_step(a.0[i], x.0[i], ln_x.0[i], ln_p_a.0[i], ln_gamma_a1.0[i]);
    }
    F64x4(out)
}

/// Streaming `ln Σ exp(xᵢ)` fed four lanes at a time: four running
/// partial sums against one shared maximum, merged in a fixed order at
/// the end, so the result is independent of how the input was blocked
/// and deterministic for a given lane width. Matches
/// [`crate::log_sum_exp`] semantics: `−∞` entries contribute nothing,
/// any `+∞` makes the total `+∞`, any NaN makes it NaN.
#[derive(Debug, Clone)]
pub struct StreamingLogSumExpX4 {
    max: f64,
    sums: [f64; 4],
    comps: [f64; 4],
    saw_nan: bool,
    saw_pos_inf: bool,
}

impl StreamingLogSumExpX4 {
    /// An empty accumulator; [`value`](Self::value) is `−∞`.
    pub fn new() -> Self {
        StreamingLogSumExpX4 {
            max: f64::NEG_INFINITY,
            sums: [0.0; 4],
            comps: [0.0; 4],
            saw_nan: false,
            saw_pos_inf: false,
        }
    }

    /// Adds `exp(v)` for all four lanes of `v`.
    pub fn push_x4(&mut self, v: F64x4) {
        let mut block_max = f64::NEG_INFINITY;
        let mut cleaned = v.0;
        for lane in &mut cleaned {
            if lane.is_nan() {
                self.saw_nan = true;
                *lane = f64::NEG_INFINITY;
            } else if *lane == f64::INFINITY {
                self.saw_pos_inf = true;
                *lane = f64::NEG_INFINITY;
            } else if *lane > block_max {
                block_max = *lane;
            }
        }
        if block_max > self.max {
            let scale = exp_lane(self.max - block_max);
            for (s, c) in self.sums.iter_mut().zip(self.comps.iter_mut()) {
                *s *= scale;
                *c *= scale;
            }
            self.max = block_max;
        }
        if self.max == f64::NEG_INFINITY {
            return;
        }
        let terms = (F64x4(cleaned) - F64x4::splat(self.max)).exp().0;
        // Kahan-compensated per-lane accumulation.
        for ((s, c), &t) in self.sums.iter_mut().zip(self.comps.iter_mut()).zip(&terms) {
            let y = t - *c;
            let next = *s + y;
            *c = (next - *s) - y;
            *s = next;
        }
    }

    /// Adds `exp(v)` for one trailing element (ragged tails).
    pub fn push(&mut self, v: f64) {
        self.push_x4(F64x4([v, f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY]));
    }

    /// The accumulated `ln Σ exp(xᵢ)`.
    pub fn value(&self) -> f64 {
        if self.saw_nan {
            return f64::NAN;
        }
        if self.saw_pos_inf {
            return f64::INFINITY;
        }
        if self.max == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        // Fixed-order merge of the four partial sums (and then their
        // compensations): deterministic for any input blocking.
        let s = (self.sums[0] + self.sums[1]) + (self.sums[2] + self.sums[3]);
        let c = (self.comps[0] + self.comps[1]) + (self.comps[2] + self.comps[3]);
        self.max + (s - c).ln()
    }
}

impl Default for StreamingLogSumExpX4 {
    fn default() -> Self {
        Self::new()
    }
}

/// Batch `ln Σ exp(xᵢ)` over a slice on the lane kernels — the wide
/// counterpart of [`crate::log_sum_exp`], used by the NINT grid
/// normalisation. Two passes like the scalar batch function (a wide
/// max, then a wide exp-sum with one Kahan accumulator per lane merged
/// in fixed order) rather than the streaming accumulator: a
/// materialised slice never needs the streaming rescale, which costs a
/// renormalisation every time a block raises the running maximum.
/// Same special-value semantics: `−∞` entries contribute nothing, any
/// `+∞` makes the total `+∞`, any NaN makes it NaN.
pub fn log_sum_exp_x4(values: &[f64]) -> f64 {
    log_sum_exp_wide::<WIDE_LANES>(values)
}

/// 8-lane batch `ln Σ exp(xᵢ)` — [`log_sum_exp_x4`] at the
/// [`SimdDispatch::Wide8`] block width. Differs from the 4-lane result
/// only through the partial-sum grouping (twice as many Kahan
/// accumulators, one more merge level), never through the per-lane
/// arithmetic.
pub fn log_sum_exp_x8(values: &[f64]) -> f64 {
    log_sum_exp_wide::<WIDE8_LANES>(values)
}

/// Width-generic batch `ln Σ exp(xᵢ)` over `L` lanes: the shared body
/// behind [`log_sum_exp_x4`] / [`log_sum_exp_x8`]. At `L = 4` this is
/// the original 4-lane kernel verbatim — same per-lane arithmetic,
/// same remainder handling (into lane 0), same adjacent-pair merge
/// order — so the refactor is bitwise-invisible to recorded runs.
pub fn log_sum_exp_wide<const L: usize>(values: &[f64]) -> f64 {
    // Pass 1: per-lane maxima and NaN detection, branch-light so the
    // loop vectorises (`v > m` is false for NaN, so a NaN never
    // becomes the max; the flag is folded separately).
    let mut maxes = [f64::NEG_INFINITY; L];
    let mut saw_nan = false;
    let mut chunks = values.chunks_exact(L);
    for chunk in &mut chunks {
        for (m, &v) in maxes.iter_mut().zip(chunk) {
            saw_nan |= v.is_nan();
            if v > *m {
                *m = v;
            }
        }
    }
    let mut max = f64::NEG_INFINITY;
    for m in maxes {
        if m > max {
            max = m;
        }
    }
    for &v in chunks.remainder() {
        saw_nan |= v.is_nan();
        if v > max {
            max = v;
        }
    }
    if saw_nan {
        return f64::NAN;
    }
    if max.is_infinite() {
        return max;
    }

    // Pass 2: Σ exp(xᵢ − max), Kahan-compensated per lane. `−∞`
    // entries exponentiate to exactly `0.0` through the clamped
    // kernel, contributing nothing.
    let mut sums = [0.0; L];
    let mut comps = [0.0; L];
    let mut chunks = values.chunks_exact(L);
    for chunk in &mut chunks {
        for ((s, c), &v) in sums.iter_mut().zip(comps.iter_mut()).zip(chunk) {
            let t = exp_lane(v - max);
            let y = t - *c;
            let next = *s + y;
            *c = (next - *s) - y;
            *s = next;
        }
    }
    for &v in chunks.remainder() {
        let t = exp_lane(v - max);
        let y = t - comps[0];
        let next = sums[0] + y;
        comps[0] = (next - sums[0]) - y;
        sums[0] = next;
    }
    // Fixed-order adjacent-pair merge: deterministic for a given lane
    // width, and identical to `(s0+s1)+(s2+s3)` at L = 4.
    let s = tree_sum(sums);
    let c = tree_sum(comps);
    max + (s - c).ln()
}

/// Adjacent-pair reduction tree over `L` lanes: `(v0+v1)+(v2+v3)+…` in
/// a fixed bracketing, so the merge order is a function of `L` alone.
fn tree_sum<const L: usize>(mut v: [f64; L]) -> f64 {
    let mut n = L;
    while n > 1 {
        let half = n / 2;
        for i in 0..half {
            v[i] = v[2 * i] + v[2 * i + 1];
        }
        if n % 2 == 1 {
            v[half] = v[n - 1];
        }
        n = half + n % 2;
    }
    v[0]
}

/// In-place `vᵢ ← exp(vᵢ − shift)` on the lane kernels — the NINT
/// probability-normalisation pass. Ragged tails go through
/// [`exp_lane`], so every element sees the same arithmetic.
pub fn exp_shift_inplace_x4(values: &mut [f64], shift: f64) {
    exp_shift_inplace_wide::<WIDE_LANES>(values, shift);
}

/// 8-lane in-place `vᵢ ← exp(vᵢ − shift)`. Bitwise identical to the
/// 4-lane (and scalar-tail) form for every element — the exponential
/// is per-lane pure, so the block width only changes the loop shape.
pub fn exp_shift_inplace_x8(values: &mut [f64], shift: f64) {
    exp_shift_inplace_wide::<WIDE8_LANES>(values, shift);
}

/// Width-generic body of [`exp_shift_inplace_x4`] /
/// [`exp_shift_inplace_x8`].
pub fn exp_shift_inplace_wide<const L: usize>(values: &mut [f64], shift: f64) {
    let mut chunks = values.chunks_exact_mut(L);
    for chunk in &mut chunks {
        for v in chunk {
            *v = exp_lane(*v - shift);
        }
    }
    for v in chunks.into_remainder() {
        *v = exp_lane(*v - shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::ln_gamma;
    use crate::incgamma::{ln_gamma_p, ln_gamma_q};
    use crate::logsumexp::log_sum_exp;

    #[test]
    fn exp_lane_matches_libm_to_couple_ulps() {
        for k in -3000..=3000 {
            let x = k as f64 * 0.237;
            let got = exp_lane(x);
            let want = x.exp();
            if want == 0.0 || want.is_infinite() {
                assert_eq!(got, want, "x={x}");
            } else {
                // A couple of ulps in the bulk; the two-factor 2^k
                // scaling near the underflow boundary costs a few more.
                let bound = if x.abs() > 700.0 { 1e-14 } else { 4.0 * f64::EPSILON };
                let rel = ((got - want) / want).abs();
                assert!(rel <= bound, "x={x}: got={got}, want={want}");
            }
        }
    }

    #[test]
    fn exp_lane_specials_and_extremes() {
        assert!(exp_lane(f64::NAN).is_nan());
        assert_eq!(exp_lane(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp_lane(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_lane(0.0), 1.0);
        assert_eq!(exp_lane(800.0), f64::INFINITY);
        assert_eq!(exp_lane(-800.0), 0.0);
        // Subnormal results stay proportionally accurate.
        let x = -730.0;
        let got = exp_lane(x);
        let want = x.exp();
        assert!(got > 0.0 && (got / want - 1.0).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn wide_exp_lanes_match_exp_lane_bitwise() {
        let v = F64x4([-3.5, 0.0, 17.25, -701.0]);
        let wide = v.exp().0;
        for (i, &x) in v.0.iter().enumerate() {
            assert_eq!(wide[i].to_bits(), exp_lane(x).to_bits());
        }
    }

    #[test]
    fn arithmetic_is_lanewise() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::splat(2.0);
        assert_eq!((a + b).0, [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).0, [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a / b).0, [0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.mul_add(b, b).0, [4.0, 6.0, 8.0, 10.0]);
        assert_eq!(F64x4::from_slice(&[1.0, 2.0, 3.0, 4.0, 9.0]).0, a.0);
    }

    #[test]
    fn ladder_x4_matches_four_scalar_steps() {
        for &x0 in &[0.5, 4.2, 1000.5, 20000.25] {
            let base = ln_gamma(x0);
            let (vals, next) = ln_gamma_ladder_x4(x0, base);
            let mut v = base;
            for (k, &got) in vals.0.iter().enumerate() {
                assert_eq!(got.to_bits(), v.to_bits(), "x0={x0}, k={k}");
                v += (x0 + k as f64).ln();
            }
            assert_eq!(next.to_bits(), v.to_bits(), "x0={x0} final");
            // And the whole thing still tracks direct ln Γ.
            assert!((next - ln_gamma(x0 + 4.0)).abs() <= 1e-12 * ln_gamma(x0 + 4.0).abs().max(1.0));
        }
    }

    #[test]
    fn q_step_x4_agrees_with_scalar_step() {
        let a = F64x4([0.5, 2.0, 500.0, 5000.0]);
        let frac = [0.05, 0.5, 1.8, 3.0];
        let mut x = [0.0; 4];
        for i in 0..4 {
            x[i] = a.0[i] * frac[i];
        }
        let x = F64x4(x);
        let ln_x = x.ln();
        let mut ln_q = [0.0; 4];
        let mut gln1 = [0.0; 4];
        for i in 0..4 {
            ln_q[i] = ln_gamma_q(a.0[i], x.0[i]);
            gln1[i] = ln_gamma(a.0[i] + 1.0);
        }
        let wide = ln_gamma_q_step_x4(a, x, ln_x, F64x4(ln_q), F64x4(gln1)).0;
        for i in 0..4 {
            let direct = ln_gamma_q(a.0[i] + 1.0, x.0[i]);
            let tol = 1e-12 * direct.abs().max(1.0)
                + 32.0 * f64::EPSILON * (a.0[i] * x.0[i].ln().abs() + x.0[i] + gln1[i].abs());
            assert!(
                (wide[i] - direct).abs() <= tol,
                "lane {i}: wide={}, direct={direct}",
                wide[i]
            );
        }
    }

    #[test]
    fn q_step_x4_edge_lanes() {
        let wide = ln_gamma_q_step_x4(
            F64x4([2.0, 2.0, -1.0, 2.0]),
            F64x4([0.0, f64::INFINITY, 1.0, 1.0]),
            F64x4([f64::NEG_INFINITY, f64::INFINITY, 0.0, 0.0]),
            F64x4([0.0, f64::NEG_INFINITY, 0.0, f64::NAN]),
            F64x4::splat(ln_gamma(3.0)),
        )
        .0;
        assert_eq!(wide[0], 0.0);
        assert_eq!(wide[1], f64::NEG_INFINITY);
        assert!(wide[2].is_nan());
        assert!(wide[3].is_nan());
    }

    #[test]
    fn p_step_x4_is_bitwise_scalar_per_lane() {
        // Lanes straddling the cancellation-guard boundary: deep lower
        // tail (re-anchors), bulk and upper tail (recurrence holds).
        let a = F64x4([500.0, 0.5, 30.0, 5000.0]);
        let frac = [1e-3, 0.5, 1.0, 5.0];
        let mut xs = [0.0; 4];
        for i in 0..4 {
            xs[i] = a.0[i] * frac[i];
        }
        let x = F64x4(xs);
        let ln_x = x.ln();
        let mut ln_p = [0.0; 4];
        let mut gln1 = [0.0; 4];
        for i in 0..4 {
            ln_p[i] = ln_gamma_p(a.0[i], x.0[i]);
            gln1[i] = ln_gamma(a.0[i] + 1.0);
        }
        let wide = ln_gamma_p_step_x4(a, x, ln_x, F64x4(ln_p), F64x4(gln1)).0;
        for i in 0..4 {
            let scalar = ln_gamma_p_step(a.0[i], xs[i], xs[i].ln(), ln_p[i], gln1[i]);
            assert_eq!(wide[i].to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn streaming_x4_matches_batch() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![-1000.0, -1000.0, -999.5, -1001.0, -1000.2],
            (0..37).map(|k| -(k as f64) * 3.7).collect(),
            vec![700.0, -700.0, 3.0, 2.0, 1.0],
            vec![f64::NEG_INFINITY; 5],
            vec![f64::NEG_INFINITY, -4.0, -5.0, -6.0],
            vec![f64::INFINITY, 0.0, 1.0, 2.0],
            vec![f64::NAN, 0.0, 1.0, 2.0],
        ];
        for case in &cases {
            let batch = log_sum_exp(case);
            let wide = log_sum_exp_x4(case);
            if batch.is_nan() {
                assert!(wide.is_nan(), "{case:?}");
            } else if batch.is_finite() {
                assert!(
                    (batch - wide).abs() <= 1e-12 * batch.abs().max(1.0),
                    "{case:?}: wide={wide}, batch={batch}"
                );
            } else {
                assert_eq!(batch, wide, "{case:?}");
            }
        }
    }

    #[test]
    fn streaming_x4_blocking_independent() {
        let values: Vec<f64> = (0..103).map(|k| ((k * 37) % 101) as f64 * 0.31 - 15.0).collect();
        let a = log_sum_exp_x4(&values);
        // Push the same values one at a time: same accumulator state
        // evolution per lane 0, different blocking.
        let mut acc = StreamingLogSumExpX4::new();
        for &v in &values {
            acc.push(v);
        }
        let b = acc.value();
        assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn exp_shift_inplace_matches_elementwise() {
        let mut v: Vec<f64> = (0..11).map(|k| -(k as f64) * 1.7).collect();
        let shift = -3.0;
        let expect: Vec<f64> = v.iter().map(|&x| exp_lane(x - shift)).collect();
        exp_shift_inplace_x4(&mut v, shift);
        for (got, want) in v.iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn dispatch_policy_resolution() {
        assert_eq!(SimdPolicy::ForceScalar.resolve(), SimdDispatch::Scalar);
        assert_eq!(SimdPolicy::ForceWide.resolve(), SimdDispatch::Wide4);
        assert_eq!(SimdPolicy::ForceWide8.resolve(), SimdDispatch::Wide8);
        assert_eq!(SimdDispatch::Scalar.lane_width(), 1);
        assert_eq!(SimdDispatch::Wide4.lane_width(), 4);
        assert_eq!(SimdDispatch::Wide8.lane_width(), 8);
        // Auto resolves to whatever the process-wide switch says; all
        // sides are legal, it just must be stable.
        assert_eq!(SimdPolicy::Auto.resolve(), SimdPolicy::Auto.resolve());
    }

    #[test]
    fn x8_arithmetic_and_exp_are_lanewise_bitwise_with_x4() {
        let xs = [-3.5, 0.0, 17.25, -701.0, 1.0, -0.125, 650.0, -2.0e-8];
        let a8 = F64x8(xs);
        let b8 = F64x8::splat(1.5);
        let e8 = a8.exp().0;
        let m8 = a8.mul_add(b8, b8).0;
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(e8[i].to_bits(), exp_lane(x).to_bits(), "exp lane {i}");
            assert_eq!(m8[i].to_bits(), x.mul_add(1.5, 1.5).to_bits(), "fma lane {i}");
        }
        assert_eq!((a8 + b8).0[3], xs[3] + 1.5);
        assert_eq!((a8 * b8).0[6], xs[6] * 1.5);
        assert_eq!(F64x8::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 99.0]).0[7], 8.0);
    }

    #[test]
    fn q_step_lane_is_bitwise_a_x4_lane() {
        let a = [0.5, 2.0, 500.0, 5000.0];
        let frac = [0.05, 0.5, 1.8, 3.0];
        for i in 0..4 {
            let x = a[i] * frac[i];
            let ln_q = ln_gamma_q(a[i], x);
            let gln1 = ln_gamma(a[i] + 1.0);
            let wide = ln_gamma_q_step_x4(
                F64x4::splat(a[i]),
                F64x4::splat(x),
                F64x4::splat(x.ln()),
                F64x4::splat(ln_q),
                F64x4::splat(gln1),
            )
            .0[0];
            let lane = ln_gamma_q_step_lane(a[i], x, x.ln(), ln_q, gln1);
            assert_eq!(wide.to_bits(), lane.to_bits(), "case {i}");
        }
    }

    #[test]
    fn x8_reductions_match_x4_to_tolerance_and_tails_bitwise() {
        let values: Vec<f64> = (0..53).map(|k| ((k * 29) % 97) as f64 * 0.41 - 12.0).collect();
        let a = log_sum_exp_x4(&values);
        let b = log_sum_exp_x8(&values);
        assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        assert!(log_sum_exp_x8(&[f64::NAN, 1.0]).is_nan());
        assert_eq!(log_sum_exp_x8(&[f64::INFINITY, 1.0]), f64::INFINITY);
        assert_eq!(log_sum_exp_x8(&[f64::NEG_INFINITY; 9]), f64::NEG_INFINITY);

        // exp-shift is per-lane pure: x8 and x4 agree bitwise on every
        // element, whatever the blocking.
        let mut v4 = values.clone();
        let mut v8 = values.clone();
        exp_shift_inplace_x4(&mut v4, a);
        exp_shift_inplace_x8(&mut v8, a);
        for (x, y) in v4.iter().zip(&v8) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn tree_sum_matches_fixed_bracketing() {
        let v4 = [1.0e16, 3.0, -1.0e16, 7.5];
        assert_eq!(
            tree_sum(v4).to_bits(),
            ((v4[0] + v4[1]) + (v4[2] + v4[3])).to_bits()
        );
        let v8 = [1.0e16, 3.0, -1.0e16, 7.5, 0.25, -4.0, 1.0e-9, 2.0];
        let want = ((v8[0] + v8[1]) + (v8[2] + v8[3])) + ((v8[4] + v8[5]) + (v8[6] + v8[7]));
        assert_eq!(tree_sum(v8).to_bits(), want.to_bits());
    }
}
