//! Incremental recurrence kernels for walking special functions along a
//! unit-spaced grid of shapes.
//!
//! The VB2 component sweep evaluates `ln Γ` and the regularised incomplete
//! gamma tails at shapes that advance by a fixed stride as the latent fault
//! count `N` steps by one. Rather than re-deriving each value from scratch
//! (a Lanczos evaluation, a power series or a continued fraction), these
//! kernels advance the previous value by one term:
//!
//! * `ln Γ(x + 1) = ln x + ln Γ(x)` — the [`LnGammaLadder`];
//! * `Q(a + 1, x) = Q(a, x) + x^a e^{−x} / Γ(a + 1)` — [`ln_gamma_q_step`],
//!   a sum of positive terms, unconditionally stable in log space;
//! * `P(a + 1, x) = P(a, x) − x^a e^{−x} / Γ(a + 1)` — [`ln_gamma_p_step`],
//!   a true difference that can cancel, so the kernel falls back to a
//!   direct evaluation whenever more than half the mass cancels.
//!
//! Each unit step costs a handful of ulps at most; the ladder re-anchors
//! with a direct [`ln_gamma`] evaluation every [`REANCHOR_PERIOD`] steps so
//! accumulated drift stays below ~`period · ulp` relative — far inside the
//! `1e-12` agreement bound the property tests assert. Callers that split
//! work across threads must start a fresh ladder (and fresh recurrence
//! base) at each chunk head so results are independent of the thread
//! count; see `nhpp_vb::vb2` and DESIGN.md §10.

use crate::gamma::ln_gamma;
use crate::incgamma::ln_gamma_p_given;
use crate::logsumexp::{log_diff_exp, log_sum_exp_pair};

/// Number of unit steps a [`LnGammaLadder`] takes before re-anchoring with
/// a direct [`ln_gamma`] evaluation.
pub const REANCHOR_PERIOD: u32 = 32;

/// `ln Γ(x)` maintained incrementally along `x, x+1, x+2, …` via
/// `ln Γ(x + 1) = ln x + ln Γ(x)`, re-anchored by a direct evaluation
/// every [`REANCHOR_PERIOD`] steps to bound drift.
///
/// # Example
///
/// ```
/// use nhpp_special::{ln_gamma, LnGammaLadder};
/// let mut ladder = LnGammaLadder::new(3.5);
/// ladder.advance(); // now at 4.5
/// ladder.advance(); // now at 5.5
/// assert!((ladder.value() - ln_gamma(5.5)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LnGammaLadder {
    x: f64,
    ln_value: f64,
    steps_since_anchor: u32,
}

impl LnGammaLadder {
    /// Anchors a ladder at `x` with a direct `ln Γ(x)` evaluation.
    pub fn new(x: f64) -> Self {
        LnGammaLadder {
            x,
            ln_value: ln_gamma(x),
            steps_since_anchor: 0,
        }
    }

    /// The current argument.
    pub fn x(&self) -> f64 {
        self.x
    }

    /// `ln Γ(x)` at the current argument.
    pub fn value(&self) -> f64 {
        self.ln_value
    }

    /// Advances the ladder one unit step to `x + 1`.
    pub fn advance(&mut self) {
        self.ln_value += self.x.ln();
        self.x += 1.0;
        self.steps_since_anchor += 1;
        if self.steps_since_anchor >= REANCHOR_PERIOD {
            self.ln_value = ln_gamma(self.x);
            self.steps_since_anchor = 0;
        }
    }

    /// Advances by `stride` unit steps (the VB2 `b`-shape ladder steps by
    /// `α₀` per component).
    pub fn advance_by(&mut self, stride: u32) {
        for _ in 0..stride {
            self.advance();
        }
    }
}

/// `ln` of the shared forward-recurrence increment
/// `x^a e^{−x} / Γ(a + 1)`, i.e. `a·ln x − x − ln Γ(a + 1)`.
///
/// `ln_x` and `ln_gamma_a1 = ln Γ(a + 1)` are supplied by the caller so a
/// sweep over many shapes at a fixed `x` hoists both.
#[inline]
fn ln_increment(a: f64, x: f64, ln_x: f64, ln_gamma_a1: f64) -> f64 {
    a * ln_x - x - ln_gamma_a1
}

/// `ln Q(a + 1, x)` from `ln Q(a, x)` via the stable forward recurrence
/// `Q(a + 1, x) = Q(a, x) + x^a e^{−x} / Γ(a + 1)`.
///
/// Both terms are positive, so the log-space sum never cancels; the step
/// is accurate to a few ulps for any `a > 0`, `x ≥ 0`. `ln_x = ln x` and
/// `ln_gamma_a1 = ln Γ(a + 1)` are threaded by the caller.
pub fn ln_gamma_q_step(a: f64, x: f64, ln_x: f64, ln_q_a: f64, ln_gamma_a1: f64) -> f64 {
    if !(a > 0.0) || !(x >= 0.0) || ln_q_a.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == f64::INFINITY {
        return f64::NEG_INFINITY;
    }
    log_sum_exp_pair(ln_q_a, ln_increment(a, x, ln_x, ln_gamma_a1))
}

/// `ln P(a + 1, x)` from `ln P(a, x)` via the forward recurrence
/// `P(a + 1, x) = P(a, x) − x^a e^{−x} / Γ(a + 1)`.
///
/// The recurrence is a genuine difference, so it loses accuracy exactly
/// when most of `P(a, x)` cancels (the deep lower tail, `x ≪ a`). The
/// kernel detects that case — the stepped value dropping more than a
/// factor of two below `P(a, x)` — and falls back to a direct
/// [`ln_gamma_p_given`] evaluation, which is cheap there (the power
/// series converges in a few terms for `x < a + 2`).
pub fn ln_gamma_p_step(a: f64, x: f64, ln_x: f64, ln_p_a: f64, ln_gamma_a1: f64) -> f64 {
    if !(a > 0.0) || !(x >= 0.0) || ln_p_a.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x == f64::INFINITY {
        return 0.0;
    }
    let stepped = log_diff_exp(ln_p_a, ln_increment(a, x, ln_x, ln_gamma_a1));
    if stepped.is_finite() && stepped >= ln_p_a - std::f64::consts::LN_2 {
        stepped
    } else {
        ln_gamma_p_given(a + 1.0, x, ln_gamma_a1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incgamma::{ln_gamma_p, ln_gamma_q};

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol * expected.abs().max(1.0),
            "actual={actual}, expected={expected}"
        );
    }

    #[test]
    fn ladder_tracks_ln_gamma_across_reanchors() {
        for &x0 in &[0.5, 1.0, 2.0, 17.3, 1000.5] {
            let mut ladder = LnGammaLadder::new(x0);
            for k in 0..100u32 {
                let x = x0 + k as f64;
                assert_close(ladder.value(), ln_gamma(x), 1e-13);
                ladder.advance();
            }
        }
    }

    #[test]
    fn ladder_stride_two_matches_unit_steps() {
        let mut a = LnGammaLadder::new(4.2);
        let mut b = LnGammaLadder::new(4.2);
        for _ in 0..10 {
            a.advance_by(2);
            b.advance();
            b.advance();
        }
        assert_eq!(a.value().to_bits(), b.value().to_bits());
        assert_eq!(a.x(), 24.2);
    }

    #[test]
    fn q_step_matches_direct() {
        for &a in &[0.5, 1.0, 2.0, 30.0, 500.0] {
            for &frac in &[0.05, 0.5, 1.0, 1.8, 5.0] {
                let x = a * frac;
                let stepped =
                    ln_gamma_q_step(a, x, x.ln(), ln_gamma_q(a, x), ln_gamma(a + 1.0));
                // The increment a·ln x − x − ln Γ(a+1) cancels terms of
                // magnitude ~a·ln a, so a few hundred ulps of absolute
                // error are inherent at large shapes; 1e-12 is the bound
                // the sweep relies on.
                assert_close(stepped, ln_gamma_q(a + 1.0, x), 1e-12);
            }
        }
    }

    #[test]
    fn p_step_matches_direct_including_cancellation_regime() {
        // x ≪ a exercises the fallback path, x ≈ a and x ≫ a the
        // recurrence itself.
        for &a in &[0.5, 1.0, 2.0, 30.0, 500.0, 5000.0] {
            for &frac in &[1e-3, 0.05, 0.5, 1.0, 1.8, 5.0] {
                let x = a * frac;
                let stepped =
                    ln_gamma_p_step(a, x, x.ln(), ln_gamma_p(a, x), ln_gamma(a + 1.0));
                assert_close(stepped, ln_gamma_p(a + 1.0, x), 1e-12);
            }
        }
    }

    #[test]
    fn step_edge_cases() {
        let gln1 = ln_gamma(3.0);
        assert_eq!(ln_gamma_q_step(2.0, 0.0, f64::NEG_INFINITY, 0.0, gln1), 0.0);
        assert_eq!(
            ln_gamma_q_step(2.0, f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, gln1),
            f64::NEG_INFINITY
        );
        assert_eq!(
            ln_gamma_p_step(2.0, 0.0, f64::NEG_INFINITY, f64::NEG_INFINITY, gln1),
            f64::NEG_INFINITY
        );
        assert_eq!(
            ln_gamma_p_step(2.0, f64::INFINITY, f64::INFINITY, 0.0, gln1),
            0.0
        );
        assert!(ln_gamma_q_step(-1.0, 1.0, 0.0, 0.0, 0.0).is_nan());
        assert!(ln_gamma_p_step(1.0, 1.0, 0.0, f64::NAN, 0.0).is_nan());
    }

    #[test]
    fn shape_one_base_is_exact() {
        // Q(1, x) = e^{−x}, so the sweep's α₀ = 1 base is ln Q = −x and
        // one Q-step gives the shape-2 tail exactly.
        for &x in &[0.1, 1.0, 10.0, 300.0] {
            let stepped = ln_gamma_q_step(1.0, x, x.ln(), -x, ln_gamma(2.0));
            assert_close(stepped, ln_gamma_q(2.0, x), 1e-14);
        }
    }
}
