//! Standard normal density, CDF, survival function and quantile.

use crate::erf::erfc;
use std::f64::consts::{PI, SQRT_2};

/// Standard normal probability density `φ(x)`.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Log of the standard normal density, `ln φ(x)`.
pub fn norm_ln_pdf(x: f64) -> f64 {
    -0.5 * x * x - 0.5 * (2.0 * PI).ln()
}

/// Standard normal CDF `Φ(x)`, accurate in both tails.
///
/// # Example
///
/// ```
/// assert!((nhpp_special::norm_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((nhpp_special::norm_cdf(1.96) - 0.975_002_104_851_780_2).abs() < 1e-12);
/// ```
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Standard normal survival function `1 − Φ(x)`, without cancellation for
/// large `x`.
pub fn norm_sf(x: f64) -> f64 {
    0.5 * erfc(x / SQRT_2)
}

/// Standard normal quantile (inverse CDF, a.k.a. probit) `Φ⁻¹(p)` for
/// `p ∈ [0, 1]`.
///
/// Uses Acklam's rational approximation followed by one Halley refinement
/// step against [`norm_cdf`], giving near machine-precision results.
/// Returns `±∞` at the endpoints and [`f64::NAN`] outside `[0, 1]`.
///
/// # Example
///
/// ```
/// let z = nhpp_special::norm_ppf(0.975);
/// assert!((z - 1.959_963_984_540_054).abs() < 1e-12);
/// ```
pub fn norm_ppf(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: e = Φ(x) − p, u = e / φ(x), x ← x − u/(1 + xu/2).
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol * expected.abs().max(1.0),
            "actual={actual}, expected={expected}"
        );
    }

    #[test]
    fn cdf_known_values() {
        assert_close(norm_cdf(0.0), 0.5, 1e-15);
        assert_close(norm_cdf(1.0), 0.841_344_746_068_542_9, 1e-13);
        assert_close(norm_cdf(-1.0), 0.158_655_253_931_457_05, 1e-13);
        assert_close(norm_cdf(3.0), 0.998_650_101_968_369_9, 1e-13);
        // Deep tail survival value.
        assert_close(norm_sf(6.0), 9.865_876_450_376_946e-10, 1e-9);
    }

    #[test]
    fn ppf_known_values() {
        assert_eq!(norm_ppf(0.5), 0.0);
        assert_close(norm_ppf(0.975), 1.959_963_984_540_054, 1e-13);
        assert_close(norm_ppf(0.995), 2.575_829_303_548_901, 1e-13);
        assert_close(norm_ppf(0.01), -2.326_347_874_040_841, 1e-13);
        assert_close(norm_ppf(1e-10), -6.361_340_902_404_056, 1e-10);
    }

    #[test]
    fn ppf_round_trip() {
        for &p in &[
            1e-12,
            1e-6,
            0.001,
            0.025,
            0.3,
            0.5,
            0.7,
            0.975,
            0.999,
            1.0 - 1e-9,
        ] {
            assert_close(norm_cdf(norm_ppf(p)), p, 1e-12);
        }
    }

    #[test]
    fn ppf_edges() {
        assert_eq!(norm_ppf(0.0), f64::NEG_INFINITY);
        assert_eq!(norm_ppf(1.0), f64::INFINITY);
        assert!(norm_ppf(-0.5).is_nan());
        assert!(norm_ppf(1.5).is_nan());
    }

    #[test]
    fn pdf_matches_ln_pdf() {
        for &x in &[-5.0, -1.0, 0.0, 0.5, 4.2] {
            assert_close(norm_pdf(x).ln(), norm_ln_pdf(x), 1e-12);
        }
    }

    #[test]
    fn symmetry() {
        for &x in &[0.3, 1.1, 2.7] {
            assert_close(norm_cdf(-x), norm_sf(x), 1e-14);
            assert_close(norm_ppf(norm_cdf(x)), x, 1e-10);
        }
    }
}
