//! Error function family, built on the incomplete gamma functions.

use crate::incgamma::{gamma_p, gamma_q};
use crate::normal::norm_ppf;
use std::f64::consts::SQRT_2;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
///
/// Defined for all real `x`; `erf(−x) = −erf(x)`.
///
/// # Example
///
/// ```
/// assert!((nhpp_special::erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-13);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Accurate in the far upper tail (no cancellation for large `x`).
///
/// # Example
///
/// ```
/// assert!((nhpp_special::erfc(2.0) - 0.004_677_734_981_063_127).abs() < 1e-12);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Inverse error function: returns `x` such that `erf(x) = y`,
/// for `y ∈ (−1, 1)`. Returns `±∞` at the endpoints and [`f64::NAN`]
/// outside `[−1, 1]`.
pub fn erf_inv(y: f64) -> f64 {
    if !(-1.0..=1.0).contains(&y) {
        return f64::NAN;
    }
    if y == 1.0 {
        return f64::INFINITY;
    }
    if y == -1.0 {
        return f64::NEG_INFINITY;
    }
    // erf(x) = 2Φ(x√2) − 1  ⇒  x = Φ⁻¹((y+1)/2)/√2
    norm_ppf((y + 1.0) / 2.0) / SQRT_2
}

/// Inverse complementary error function: returns `x` with `erfc(x) = y`,
/// for `y ∈ (0, 2)`. Returns `±∞` at the endpoints and [`f64::NAN`]
/// outside `[0, 2]`.
pub fn erfc_inv(y: f64) -> f64 {
    if !(0.0..=2.0).contains(&y) {
        return f64::NAN;
    }
    if y == 0.0 {
        return f64::INFINITY;
    }
    if y == 2.0 {
        return f64::NEG_INFINITY;
    }
    erf_inv(1.0 - y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol * expected.abs().max(1.0),
            "actual={actual}, expected={expected}"
        );
    }

    #[test]
    fn known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-13);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-13);
        assert_close(erf(2.0), 0.995_322_265_018_952_9, 1e-13);
        assert_close(erfc(2.0), 0.004_677_734_981_063_127, 1e-13);
        assert_close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-10);
    }

    #[test]
    fn symmetry_and_complement() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert_close(erf(-x), -erf(x), 1e-15);
            assert_close(erf(x) + erfc(x), 1.0, 1e-14);
            assert_close(erfc(-x), 2.0 - erfc(x), 1e-14);
        }
    }

    #[test]
    fn inverse_round_trip() {
        for &y in &[-0.999, -0.5, -0.01, 0.0, 0.3, 0.95, 0.99999] {
            assert_close(erf(erf_inv(y)), y, 1e-11);
        }
        for &y in &[1e-10, 1e-3, 0.5, 1.0, 1.7, 2.0 - 1e-9] {
            assert_close(erfc(erfc_inv(y)), y, 1e-10);
        }
    }

    #[test]
    fn inverse_edges() {
        assert_eq!(erf_inv(1.0), f64::INFINITY);
        assert_eq!(erf_inv(-1.0), f64::NEG_INFINITY);
        assert!(erf_inv(1.5).is_nan());
        assert_eq!(erfc_inv(0.0), f64::INFINITY);
        assert_eq!(erfc_inv(2.0), f64::NEG_INFINITY);
        assert!(erfc_inv(-0.1).is_nan());
    }
}
